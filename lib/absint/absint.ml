module Hir = Voltron_ir.Hir

type site = {
  s_sid : int;
  s_arr : Hir.arr;
  s_write : bool;
  s_index : Dom.t;
  s_count : float;
}

type loop_info = {
  li_sid : int;
  li_kind : [ `For | `Do_while ];
  li_var : Hir.vreg option;
  li_trip_min : float;
  li_trip_max : float;
  li_trip_est : float;
  li_enters : float;
}

type diag_kind =
  | Oob of { arr : string; size : int; index : Dom.t; write : bool }
  | Uninit_scalar of { vreg : Hir.vreg }
  | Uninit_cell of { arr : string; index : Dom.t }
  | Dead_store of { arr : string; index : int; killer_sid : int }

type diag = { d_region : string; d_sid : int; d_kind : diag_kind }

let kind_class = function
  | Oob _ -> "oob"
  | Uninit_scalar _ -> "uninit-scalar"
  | Uninit_cell _ -> "uninit-cell"
  | Dead_store _ -> "dead-store"

let pp_diag ppf d =
  match d.d_kind with
  | Oob { arr; size; index; write } ->
    Format.fprintf ppf "%s: s%d: out-of-bounds %s %s[%a] (size %d)" d.d_region
      d.d_sid
      (if write then "store to" else "load from")
      arr Dom.pp index size
  | Uninit_scalar { vreg } ->
    Format.fprintf ppf "%s: s%d: read of never-assigned scalar v%d" d.d_region
      d.d_sid vreg
  | Uninit_cell { arr; index } ->
    Format.fprintf ppf "%s: s%d: read of never-written cell %s[%a]" d.d_region
      d.d_sid arr Dom.pp index
  | Dead_store { arr; index; killer_sid } ->
    Format.fprintf ppf
      "%s: s%d: dead store to %s[%d] (overwritten by s%d before any read)"
      d.d_region d.d_sid arr index killer_sid

let diag_to_string d = Format.asprintf "%a" pp_diag d

(* --- Internal accumulators --------------------------------------------------- *)

type acc_site = {
  a_arr : Hir.arr;
  a_write : bool;
  mutable a_index : Dom.t;
  mutable a_count : float;
}

type acc_loop = {
  al_kind : [ `For | `Do_while ];
  al_var : Hir.vreg option;
  mutable al_tmin : float;
  mutable al_tmax : float;
  mutable al_est_sum : float;  (** Σ enters × trip estimate *)
  mutable al_enters : float;
}

type summary = {
  asites : (int, acc_site) Hashtbl.t;
  aloops : (int, acc_loop) Hashtbl.t;
  counts : (int, float) Hashtbl.t;
  mutable sdiags : diag list;
}

let site sum sid =
  Option.map
    (fun (a : acc_site) ->
      {
        s_sid = sid;
        s_arr = a.a_arr;
        s_write = a.a_write;
        s_index = a.a_index;
        s_count = a.a_count;
      })
    (Hashtbl.find_opt sum.asites sid)

let index_dom sum sid =
  Option.map (fun (a : acc_site) -> a.a_index) (Hashtbl.find_opt sum.asites sid)

let sites sum =
  Hashtbl.fold (fun sid _ acc -> Option.get (site sum sid) :: acc) sum.asites []
  |> List.sort (fun a b -> compare a.s_sid b.s_sid)

let loop sum sid =
  Option.map
    (fun (l : acc_loop) ->
      {
        li_sid = sid;
        li_kind = l.al_kind;
        li_var = l.al_var;
        li_trip_min = l.al_tmin;
        li_trip_max = l.al_tmax;
        li_trip_est =
          (if l.al_enters > 0. then l.al_est_sum /. l.al_enters else 0.);
        li_enters = l.al_enters;
      })
    (Hashtbl.find_opt sum.aloops sid)

let loops sum =
  Hashtbl.fold (fun sid _ acc -> Option.get (loop sum sid) :: acc) sum.aloops []
  |> List.sort (fun a b -> compare a.li_sid b.li_sid)

let count sum sid = Option.value ~default:0. (Hashtbl.find_opt sum.counts sid)
let diags sum = List.rev sum.sdiags

(* --- Abstract execution ------------------------------------------------------- *)

(* Point estimate for loops whose trip count the analysis cannot bound
   (do-while bodies, data-dependent limits). *)
let default_trips = 16.

type ctx = {
  sum : summary;
  mutable record : bool;
}

let bump ctx sid c =
  if ctx.record then
    Hashtbl.replace ctx.sum.counts sid (c +. count ctx.sum sid)

let record_site ctx sid ~arr ~write idx ~count =
  if ctx.record then begin
    let s =
      match Hashtbl.find_opt ctx.sum.asites sid with
      | Some s -> s
      | None ->
        let s = { a_arr = arr; a_write = write; a_index = Dom.bot; a_count = 0. } in
        Hashtbl.replace ctx.sum.asites sid s;
        s
    in
    s.a_index <- Dom.join s.a_index idx;
    s.a_count <- s.a_count +. count
  end

let record_loop ctx sid kind var ~tmin ~tmax ~test ~enters =
  if ctx.record then begin
    let l =
      match Hashtbl.find_opt ctx.sum.aloops sid with
      | Some l -> l
      | None ->
        let l =
          {
            al_kind = kind;
            al_var = var;
            al_tmin = infinity;
            al_tmax = 0.;
            al_est_sum = 0.;
            al_enters = 0.;
          }
        in
        Hashtbl.replace ctx.sum.aloops sid l;
        l
    in
    l.al_tmin <- min l.al_tmin tmin;
    l.al_tmax <- max l.al_tmax tmax;
    l.al_est_sum <- l.al_est_sum +. (test *. enters);
    l.al_enters <- l.al_enters +. enters
  end

let eval_operand env = function
  | Hir.Imm i -> Dom.const i
  | Hir.Reg r -> env.(r)

let join_env dst src =
  Array.iteri (fun i v -> dst.(i) <- Dom.join v src.(i)) dst

(* Returns true if [head] changed. *)
let widen_env head out =
  let changed = ref false in
  Array.iteri
    (fun i v ->
      let w = Dom.widen v out.(i) in
      if not (Dom.equal w v) then begin
        head.(i) <- w;
        changed := true
      end)
    head;
  !changed

let float_of_bound b = if b = max_int || b = min_int then infinity else float_of_int b

let rec eval_expr ctx env ~count sid (e : Hir.expr) =
  match e with
  | Hir.Alu (op, a, b) -> Dom.alu op (eval_operand env a) (eval_operand env b)
  | Hir.Fpu (op, a, b) ->
    (* Semantics.fpu computes the matching integer op. *)
    let alu_op : Voltron_isa.Inst.alu_op =
      match op with
      | Voltron_isa.Inst.Fadd -> Voltron_isa.Inst.Add
      | Voltron_isa.Inst.Fsub -> Voltron_isa.Inst.Sub
      | Voltron_isa.Inst.Fmul -> Voltron_isa.Inst.Mul
      | Voltron_isa.Inst.Fdiv -> Voltron_isa.Inst.Div
    in
    Dom.alu alu_op (eval_operand env a) (eval_operand env b)
  | Hir.Cmp (op, a, b) -> Dom.cmp op (eval_operand env a) (eval_operand env b)
  | Hir.Select (p, a, b) -> (
    let vp = eval_operand env p in
    let va = eval_operand env a and vb = eval_operand env b in
    match Dom.is_const vp with
    | Some 0 -> vb
    | Some _ -> va
    | None -> if Dom.contains_zero vp then Dom.join va vb else va)
  | Hir.Load (arr, idx) ->
    record_site ctx sid ~arr ~write:false (eval_operand env idx) ~count;
    Dom.top
  | Hir.Operand o -> eval_operand env o

and exec_stmts ctx env ~count stmts =
  List.iter (exec_stmt ctx env ~count) stmts

and exec_stmt ctx env ~count ({ Hir.sid; node } : Hir.stmt) =
  bump ctx sid count;
  match node with
  | Hir.Assign (v, e) -> env.(v) <- eval_expr ctx env ~count sid e
  | Hir.Store (arr, idx, _) ->
    record_site ctx sid ~arr ~write:true (eval_operand env idx) ~count
  | Hir.If (c, then_, else_) -> (
    match Dom.is_const (eval_operand env c) with
    | Some 0 -> exec_stmts ctx env ~count else_
    | Some _ -> exec_stmts ctx env ~count then_
    | None ->
      let taken = Array.copy env in
      exec_stmts ctx taken ~count:(count /. 2.) then_;
      exec_stmts ctx env ~count:(count /. 2.) else_;
      join_env env taken)
  | Hir.For loop -> exec_for ctx env ~count sid loop
  | Hir.Do_while { body; cond } -> exec_dowhile ctx env ~count sid body cond

and stabilize ctx head body ~advance =
  let record0 = ctx.record in
  ctx.record <- false;
  let max_iter = (8 * Array.length head) + 32 in
  let rec go n =
    let out = Array.copy head in
    exec_stmts ctx out ~count:0. body;
    advance out;
    if widen_env head out then
      if n < max_iter then go (n + 1)
      else
        (* Safety net: the widening chain is finite, but blow every
           register to ⊤ rather than loop without a proof. *)
        Array.iteri (fun i _ -> head.(i) <- Dom.top) head
  in
  go 0;
  ctx.record <- record0

and exec_for ctx env ~count sid ({ Hir.var; init; limit; step; body } : Hir.for_loop) =
  let iv = eval_operand env init in
  let lim = eval_operand env limit in
  (* The interpreter reads the limit once at loop entry, so only
     rebinding of the induction variable inside the body invalidates the
     head bound var ∈ [init.lo, limit.hi-1] and the trip-count algebra. *)
  let var_rebound = List.mem var (Hir.defined_vregs body) in
  let bounded = step > 0 && not var_rebound in
  let var_abs = if bounded then Dom.loop_var ~init:iv ~limit:lim ~step else Dom.top in
  let tmin, tmax =
    if not bounded then (0., infinity)
    else
      let lim_lo = float_of_bound lim.Dom.lo
      and lim_hi = float_of_bound lim.Dom.hi
      and iv_lo = float_of_bound iv.Dom.lo
      and iv_hi = float_of_bound iv.Dom.hi in
      let fstep = float_of_int step in
      let ceil_div a b = Float.of_int (int_of_float (ceil (a /. b))) in
      let tmin =
        if Float.is_finite lim_lo && Float.is_finite iv_hi then
          Float.max 0. (ceil_div (lim_lo -. iv_hi) fstep)
        else 0.
      and tmax =
        if Float.is_finite lim_hi && Float.is_finite iv_lo then
          Float.max 0. (ceil_div (lim_hi -. iv_lo) fstep)
        else infinity
      in
      (tmin, tmax)
  in
  let t_est =
    if Float.is_finite tmax then (tmin +. tmax) /. 2.
    else Float.max tmin default_trips
  in
  record_loop ctx sid `For (Some var) ~tmin ~tmax ~test:t_est ~enters:count;
  if Dom.is_bot var_abs || tmax <= 0. then
    (* Provably zero trips: only the induction variable's init assignment
       executes. *)
    env.(var) <- iv
  else begin
    let head = Array.copy env in
    head.(var) <- var_abs;
    let inv =
      if bounded then
        Dom.range iv.Dom.lo
          (if lim.Dom.hi = max_int then max_int else lim.Dom.hi - 1)
      else Dom.top
    in
    let advance out = out.(var) <- Dom.meet (Dom.add_const out.(var) step) inv in
    stabilize ctx head body ~advance;
    if ctx.record then begin
      let rec_env = Array.copy head in
      exec_stmts ctx rec_env ~count:(count *. Float.max t_est 0.) body
    end;
    let exit_var = Dom.join iv (Dom.add_const head.(var) step) in
    Array.blit head 0 env 0 (Array.length env);
    env.(var) <- exit_var
  end

and exec_dowhile ctx env ~count sid body cond =
  let tmax = dowhile_trip_bound env body cond in
  let t_est = match tmax with Some t -> t | None -> default_trips in
  let head = Array.copy env in
  stabilize ctx head body ~advance:(fun _ -> ());
  record_loop ctx sid `Do_while None ~tmin:1.
    ~tmax:(Option.value ~default:infinity tmax)
    ~test:t_est ~enters:count;
  let out = Array.copy head in
  exec_stmts ctx out ~count:(count *. t_est) body;
  ignore (eval_operand out cond);
  Array.blit out 0 env 0 (Array.length env)

(* Trip-count upper bound for a do-while: find a conjunct of the
   continuation condition of the shape [x < c] (or [x <= c], [c > x],
   ...) where [x] is a counter incremented by a positive constant exactly
   once, unconditionally, at the body's top level, and [c] is a constant
   or loop-invariant register. Once [x] crosses [c] the conjunction is
   false, so the crossing iteration bounds the trips of the whole loop —
   other conjuncts can only exit earlier. The condition register is
   chased through top-level assignments (through [And] chains) to find
   such conjuncts. *)
and dowhile_trip_bound env body cond =
  (* Top-level reaching definitions (last assignment wins — the condition
     is evaluated after the body) and everything defined elsewhere. *)
  let top_defs = Hashtbl.create 16 in
  let top_def_count = Hashtbl.create 16 in
  List.iter
    (fun ({ Hir.node; _ } : Hir.stmt) ->
      match node with
      | Hir.Assign (v, e) ->
        Hashtbl.replace top_defs v e;
        Hashtbl.replace top_def_count v
          (1 + Option.value ~default:0 (Hashtbl.find_opt top_def_count v))
      | Hir.Store _ | Hir.If _ | Hir.For _ | Hir.Do_while _ -> ())
    body;
  let nested_defs = Hashtbl.create 16 in
  List.iter
    (fun ({ Hir.node; _ } : Hir.stmt) ->
      match node with
      | Hir.If (_, a, b) ->
        List.iter (fun v -> Hashtbl.replace nested_defs v ()) (Hir.defined_vregs a);
        List.iter (fun v -> Hashtbl.replace nested_defs v ()) (Hir.defined_vregs b)
      | Hir.For { var; body = b; _ } ->
        Hashtbl.replace nested_defs var ();
        List.iter (fun v -> Hashtbl.replace nested_defs v ()) (Hir.defined_vregs b)
      | Hir.Do_while { body = b; _ } ->
        List.iter (fun v -> Hashtbl.replace nested_defs v ()) (Hir.defined_vregs b)
      | Hir.Assign _ | Hir.Store _ -> ())
    body;
  let body_def v = Hashtbl.mem top_defs v || Hashtbl.mem nested_defs v in
  (* Collect [Cmp] conjuncts reachable from the condition through [And]s
     and single-definition registers. *)
  let conjuncts = ref [] in
  let rec walk_operand depth (o : Hir.operand) =
    match o with
    | Hir.Imm _ -> ()
    | Hir.Reg v ->
      if
        depth < 16
        && Hashtbl.find_opt top_def_count v = Some 1
        && not (Hashtbl.mem nested_defs v)
      then
        Option.iter (walk_expr depth) (Hashtbl.find_opt top_defs v)
  and walk_expr depth (e : Hir.expr) =
    match e with
    | Hir.Alu (Voltron_isa.Inst.And, a, b) ->
      walk_operand (depth + 1) a;
      walk_operand (depth + 1) b
    | Hir.Cmp (op, a, b) -> conjuncts := (op, a, b) :: !conjuncts
    | Hir.Operand o -> walk_operand (depth + 1) o
    | Hir.Alu _ | Hir.Fpu _ | Hir.Select _ | Hir.Load _ -> ()
  in
  walk_operand 0 cond;
  (* The counter's unconditional top-level increment. *)
  let step_of x =
    if Hashtbl.find_opt top_def_count x = Some 1 && not (Hashtbl.mem nested_defs x)
    then
      match Hashtbl.find_opt top_defs x with
      | Some (Hir.Alu (Voltron_isa.Inst.Add, Hir.Reg r, Hir.Imm s))
      | Some (Hir.Alu (Voltron_isa.Inst.Add, Hir.Imm s, Hir.Reg r))
        when r = x && s > 0 -> Some s
      | Some (Hir.Alu (Voltron_isa.Inst.Sub, Hir.Reg r, Hir.Imm s))
        when r = x && s < 0 -> Some (-s)
      | _ -> None
    else None
  in
  (* A loop-invariant upper bound for the comparison's right-hand side. *)
  let bound_hi (o : Hir.operand) =
    match o with
    | Hir.Imm c -> Some c
    | Hir.Reg v ->
      if body_def v || env.(v).Dom.hi = max_int then None else Some env.(v).Dom.hi
  in
  let bound_of (op, a, b) =
    (* Normalise to "continue while x OP c". *)
    let candidate x c strict =
      match (x, step_of x, bound_hi c, (env.(x) : Dom.t)) with
      | _, Some s, Some c, x0 when x0.Dom.lo <> min_int ->
        let c = if strict then c else c + 1 in
        Some (Float.max 1. (ceil (float_of_int (c - x0.Dom.lo) /. float_of_int s)))
      | _ -> None
    in
    match (op, a, b) with
    | Voltron_isa.Inst.Lt, Hir.Reg x, c -> candidate x c true
    | Voltron_isa.Inst.Le, Hir.Reg x, c -> candidate x c false
    | Voltron_isa.Inst.Gt, c, Hir.Reg x -> candidate x c true
    | Voltron_isa.Inst.Ge, c, Hir.Reg x -> candidate x c false
    | _ -> None
  in
  List.fold_left
    (fun acc conj ->
      match (acc, bound_of conj) with
      | Some a, Some b -> Some (Float.min a b)
      | None, b -> b
      | a, None -> a)
    None !conjuncts

(* --- Diagnostics --------------------------------------------------------------- *)

let region_of_sid (p : Hir.program) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Hir.region) ->
      Hir.iter_stmts
        (fun (s : Hir.stmt) -> Hashtbl.replace tbl s.Hir.sid r.Hir.region_name)
        r.Hir.stmts)
    p.Hir.regions;
  fun sid -> Option.value ~default:"?" (Hashtbl.find_opt tbl sid)

let oob_diags sum (p : Hir.program) region_of =
  Hashtbl.fold
    (fun sid (s : acc_site) acc ->
      if s.a_count <= 0. || Dom.is_bot s.a_index then acc
      else
        let decl = p.Hir.arrays.(s.a_arr) in
        if Dom.is_bot (Dom.meet s.a_index (Dom.range 0 (decl.Hir.size - 1))) then
          {
            d_region = region_of sid;
            d_sid = sid;
            d_kind =
              Oob
                {
                  arr = decl.Hir.arr_name;
                  size = decl.Hir.size;
                  index = s.a_index;
                  write = s.a_write;
                };
          }
          :: acc
        else acc)
    sum.asites []

(* Report a scalar read only when no assignment to it exists anywhere in
   the program (reads then observe the interpreter's zero-fill). *)
let uninit_scalar_diags (p : Hir.program) region_of =
  let defined = Hashtbl.create 64 in
  List.iter
    (fun (r : Hir.region) ->
      List.iter
        (fun v -> Hashtbl.replace defined v ())
        (Hir.defined_vregs r.Hir.stmts))
    p.Hir.regions;
  let reported = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun (r : Hir.region) ->
      Hir.iter_stmts
        (fun ({ Hir.sid; node } : Hir.stmt) ->
          let uses =
            match node with
            | Hir.Assign (_, e) -> Hir.expr_uses e
            | Hir.Store (_, i, x) -> Hir.operand_uses i @ Hir.operand_uses x
            | Hir.If (c, _, _) -> Hir.operand_uses c
            | Hir.For { init; limit; _ } ->
              Hir.operand_uses init @ Hir.operand_uses limit
            | Hir.Do_while { cond; _ } -> Hir.operand_uses cond
          in
          List.iter
            (fun v ->
              if (not (Hashtbl.mem defined v)) && not (Hashtbl.mem reported v)
              then begin
                Hashtbl.replace reported v ();
                acc :=
                  {
                    d_region = region_of sid;
                    d_sid = sid;
                    d_kind = Uninit_scalar { vreg = v };
                  }
                  :: !acc
              end)
            uses)
        r.Hir.stmts)
    p.Hir.regions;
  !acc

(* A load from an array with no initializer whose index set is disjoint
   from every store to that array only ever observes the zero fill. *)
let uninit_cell_diags sum (p : Hir.program) region_of =
  let stores = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (s : acc_site) ->
      if s.a_write && s.a_count > 0. then
        Hashtbl.replace stores s.a_arr
          (s.a_index
          :: Option.value ~default:[] (Hashtbl.find_opt stores s.a_arr)))
    sum.asites;
  Hashtbl.fold
    (fun sid (s : acc_site) acc ->
      if s.a_write || s.a_count <= 0. || Dom.is_bot s.a_index then acc
      else
        let decl = p.Hir.arrays.(s.a_arr) in
        if decl.Hir.init <> None then acc
        else
          let written = Option.value ~default:[] (Hashtbl.find_opt stores s.a_arr) in
          if List.exists (Dom.may_equal s.a_index) written then acc
          else
            {
              d_region = region_of sid;
              d_sid = sid;
              d_kind = Uninit_cell { arr = decl.Hir.arr_name; index = s.a_index };
            }
            :: acc)
    sum.asites []

(* Dead store: a constant-index store overwritten by a later sibling
   store to the same constant cell, with no possibly-intersecting read of
   that array in between (including inside intervening compounds). *)
let dead_store_diags sum (p : Hir.program) region_of =
  let acc = ref [] in
  let idx_of sid =
    match Hashtbl.find_opt sum.asites sid with
    | Some s when s.a_count > 0. -> Some s.a_index
    | Some _ | None -> None
  in
  let subtree_may_read stmt arr cell =
    let found = ref false in
    Hir.iter_stmts
      (fun ({ Hir.sid; node } : Hir.stmt) ->
        match node with
        | Hir.Assign (_, Hir.Load (a, _)) when a = arr -> (
          match idx_of sid with
          | Some d -> if Dom.may_equal d (Dom.const cell) then found := true
          | None -> found := true)
        | _ -> ())
      [ stmt ];
    !found
  in
  let rec scan stmts =
    let arr_stmts = Array.of_list stmts in
    Array.iteri
      (fun i (st : Hir.stmt) ->
        (match st.Hir.node with
        | Hir.Store (a, _, _) -> (
          match Option.bind (idx_of st.Hir.sid) Dom.is_const with
          | None -> ()
          | Some cell ->
            let n = Array.length arr_stmts in
            let rec fwd j =
              if j >= n then ()
              else
                let nxt = arr_stmts.(j) in
                match nxt.Hir.node with
                | Hir.Store (a', _, _) when a' = a -> (
                  match Option.bind (idx_of nxt.Hir.sid) Dom.is_const with
                  | Some cell' when cell' = cell ->
                    acc :=
                      {
                        d_region = region_of st.Hir.sid;
                        d_sid = st.Hir.sid;
                        d_kind =
                          Dead_store
                            {
                              arr = p.Hir.arrays.(a).Hir.arr_name;
                              index = cell;
                              killer_sid = nxt.Hir.sid;
                            };
                      }
                      :: !acc
                  | Some _ | None -> fwd (j + 1))
                | Hir.Store _ | Hir.Assign (_, Hir.Load _) | Hir.Assign _
                | Hir.If _ | Hir.For _ | Hir.Do_while _ ->
                  if subtree_may_read nxt a cell then () else fwd (j + 1)
            in
            fwd (i + 1))
        | Hir.Assign _ | Hir.If _ | Hir.For _ | Hir.Do_while _ -> ());
        match st.Hir.node with
        | Hir.If (_, t, e) ->
          scan t;
          scan e
        | Hir.For { body; _ } | Hir.Do_while { body; _ } -> scan body
        | Hir.Assign _ | Hir.Store _ -> ())
      arr_stmts
  in
  List.iter (fun (r : Hir.region) -> scan r.Hir.stmts) p.Hir.regions;
  !acc

(* --- Entry points ---------------------------------------------------------------- *)

let fresh_summary () =
  {
    asites = Hashtbl.create 64;
    aloops = Hashtbl.create 16;
    counts = Hashtbl.create 128;
    sdiags = [];
  }

let analyze (p : Hir.program) =
  let sum = fresh_summary () in
  let ctx = { sum; record = true } in
  let env = Array.make (max 1 p.Hir.n_vregs) (Dom.const 0) in
  List.iter
    (fun (r : Hir.region) -> exec_stmts ctx env ~count:1.0 r.Hir.stmts)
    p.Hir.regions;
  let region_of = region_of_sid p in
  let ds =
    oob_diags sum p region_of
    @ uninit_scalar_diags p region_of
    @ uninit_cell_diags sum p region_of
    @ dead_store_diags sum p region_of
  in
  sum.sdiags <-
    List.rev (List.sort (fun a b -> compare (a.d_sid, a.d_region) (b.d_sid, b.d_region)) ds);
  sum

let summarize_region stmts =
  let sum = fresh_summary () in
  let ctx = { sum; record = true } in
  let nv =
    1 + List.fold_left max 0 (Hir.defined_vregs stmts @ Hir.used_vregs stmts)
  in
  let env = Array.make nv Dom.top in
  exec_stmts ctx env ~count:1.0 stmts;
  sum
