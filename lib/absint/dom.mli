(** Interval × congruence abstract domain for machine integers.

    An element over-approximates a set of concrete values with
    - an interval [lo, hi] where [min_int]/[max_int] act as -∞/+∞, and
    - a congruence (m, r): every value ≡ r (mod m). [m = 0] means the
      exact constant [r]; [m = 1] carries no information.

    Soundness under native wrap-around: the concrete semantics
    ({!Voltron_isa.Semantics}) computes on OCaml's native ints, which
    wrap silently. Finite interval bounds are kept below 2^60 in
    magnitude so additive transfer functions cannot wrap; any operation
    whose concrete result could exceed the native range degrades the
    interval to ⊤. Congruence information survives a potential wrap only
    for power-of-two moduli (2^63 ≡ 0 mod 2^k). *)

type t = private { lo : int; hi : int; m : int; r : int }

val top : t
val bot : t
val const : int -> t
val range : int -> int -> t
(** [range lo hi] with [min_int]/[max_int] acting as infinities. *)

val with_stride : m:int -> r:int -> t -> t
(** Intersect [t] with the congruence class r (mod m). *)

val is_bot : t -> bool
val is_top : t -> bool
val is_const : t -> int option
val equal : t -> t -> bool

val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t
(** [widen old next]: extrapolates unstable interval bounds to ±∞;
    congruence uses plain join (its gcd chains are finite). *)

val alu : Voltron_isa.Inst.alu_op -> t -> t -> t
(** Transfer function mirroring {!Voltron_isa.Semantics.alu}, including
    division/remainder by zero yielding 0 and shift amounts masked to
    5 bits. {!Voltron_isa.Semantics.fpu} ops are the matching integer
    ops and reuse these transfers. *)

val cmp : Voltron_isa.Inst.cmp_op -> t -> t -> t
(** Result ⊆ [0, 1]; folds to a constant when the intervals or
    congruences decide the comparison. *)

val contains : t -> int -> bool
val contains_zero : t -> bool

val may_equal : t -> t -> bool
(** Can the two abstractions share a concrete value? [false] is a proof
    of disjointness: intervals do not overlap, or the congruence classes
    are incompatible ((r1 - r2) mod gcd(m1, m2) <> 0). *)

val add_const : t -> int -> t

val loop_var : init:t -> limit:t -> step:int -> t
(** Abstraction of a counted-loop induction variable at the loop head:
    interval [init.lo, limit.hi - 1] with stride [step] anchored at
    [init]. Requires that the variable is not reassigned in the body;
    [step <= 0] yields ⊤. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
