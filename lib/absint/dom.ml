module Inst = Voltron_isa.Inst

type t = { lo : int; hi : int; m : int; r : int }

(* Finite interval bounds stay below [cap] in magnitude so that sums of
   two in-range values cannot wrap natively (2^61 < 2^62). Congruence
   moduli stay below [mcap] so residue arithmetic cannot overflow. *)
let cap = 1 lsl 60
let mcap = 1 lsl 20
let neg_inf = min_int
let pos_inf = max_int

let is_fin v = v <> neg_inf && v <> pos_inf

let emod a b =
  let b = abs b in
  let r = a mod b in
  if r < 0 then r + b else r

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let is_pow2 m = m > 0 && m land (m - 1) = 0

let mul_ovf a b =
  if a = 0 || b = 0 then Some 0
  else
    let p = a * b in
    if p / b = a && abs a <= cap * 2 && abs b <= cap * 2 then Some p else None

(* --- Constructors and normalisation ---------------------------------------- *)

let bot = { lo = 1; hi = 0; m = 1; r = 0 }
let is_bot t = t.lo > t.hi

(* A congruence survives a possible native wrap only when its modulus is a
   power of two (the native modulus 2^63 is a multiple of it). *)
let wrap_safe (m, r) = if m <= 1 || is_pow2 m then (m, r) else (1, 0)

let top = { lo = neg_inf; hi = pos_inf; m = 1; r = 0 }

let norm lo hi (m, r) =
  if lo > hi then bot
  else
    let lo = if is_fin lo && lo < -cap then neg_inf else lo in
    let hi = if is_fin hi && hi > cap then pos_inf else hi in
    let m, r =
      if m < 0 then (1, 0)
      else if m > mcap then (1, 0)
      else if m = 0 then (0, r)
      else if m = 1 then (1, 0)
      else (m, emod r m)
    in
    if lo = hi && is_fin lo then { lo; hi = lo; m = 0; r = lo }
    else
      let m, r = if is_fin lo && is_fin hi then (m, r) else wrap_safe (m, r) in
      (* An infeasible congruence inside the interval window collapses to
         bot only for windows narrower than the modulus; keep it simple
         and only check the singleton case above. *)
      { lo; hi; m; r }

let const c =
  if abs c > cap then top else { lo = c; hi = c; m = 0; r = c }

let range lo hi = norm lo hi (1, 0)

let is_top t = t.lo = neg_inf && t.hi = pos_inf && t.m = 1 && not (is_bot t)

let is_const t = if (not (is_bot t)) && t.m = 0 then Some t.r else None

let equal a b =
  is_bot a = is_bot b
  && (is_bot a || (a.lo = b.lo && a.hi = b.hi && a.m = b.m && a.r = b.r))

(* --- Congruence lattice ----------------------------------------------------- *)

(* (m, r) with m = 0 meaning the exact constant r. *)
let cjoin (m1, r1) (m2, r2) =
  if m1 = 0 && m2 = 0 && r1 = r2 then (0, r1)
  else
    let d = if r1 >= r2 then r1 - r2 else r2 - r1 in
    let g = gcd (gcd m1 m2) d in
    if g = 0 then (0, r1) else if g > mcap then (1, 0) else (g, emod r1 g)

let ccompat (m1, r1) (m2, r2) =
  if m1 = 0 && m2 = 0 then r1 = r2
  else
    let g = gcd m1 m2 in
    g <= 1 || emod (r1 - r2) g = 0

(* Over-approximate the intersection: keep the more precise side. *)
let cmeet (m1, r1) (m2, r2) =
  if not (ccompat (m1, r1) (m2, r2)) then None
  else if m1 = 0 then Some (0, r1)
  else if m2 = 0 then Some (0, r2)
  else if m1 >= m2 then Some (m1, r1)
  else Some (m2, r2)

let cadd (m1, r1) (m2, r2) =
  if m1 = 0 && m2 = 0 then
    if abs r1 <= cap && abs r2 <= cap then (0, r1 + r2) else (1, 0)
  else
    let g = gcd m1 m2 in
    let g = if g = 0 then max m1 m2 else g in
    if g = 0 || g > mcap then (1, 0) else (g, emod (emod r1 g + emod r2 g) g)

let cneg (m, r) = if m = 0 then (0, -r) else (m, emod (-r) m)

let csub c1 c2 = cadd c1 (cneg c2)

let cmul (m1, r1) (m2, r2) =
  if m1 = 0 && m2 = 0 then
    match mul_ovf r1 r2 with Some p -> (0, p) | None -> (1, 0)
  else
    (* x = r1 + a·m1, y = r2 + b·m2 ⇒ x·y ≡ r1·r2 (mod gcd(m1·m2, m1·r2, m2·r1)) *)
    let safe v = match v with Some x -> abs x | None -> 0 in
    let g =
      gcd
        (gcd (safe (mul_ovf m1 m2)) (safe (mul_ovf m1 r2)))
        (safe (mul_ovf m2 r1))
    in
    if g = 0 then (0, safe (mul_ovf r1 r2))
    else if g = 1 || g > mcap then (1, 0)
    else (g, emod (emod r1 g * emod r2 g) g)

(* --- Interval helpers -------------------------------------------------------- *)

let fin t = is_fin t.lo && is_fin t.hi

let join a b =
  if is_bot a then b
  else if is_bot b then a
  else
    norm (min a.lo b.lo) (max a.hi b.hi) (cjoin (a.m, a.r) (b.m, b.r))

let meet a b =
  if is_bot a || is_bot b then bot
  else
    match cmeet (a.m, a.r) (b.m, b.r) with
    | None -> bot
    | Some (m, r) -> norm (max a.lo b.lo) (min a.hi b.hi) (m, r)

let widen old next =
  if is_bot old then next
  else if is_bot next then old
  else
    let j = join old next in
    let lo = if j.lo < old.lo then neg_inf else old.lo in
    let hi = if j.hi > old.hi then pos_inf else old.hi in
    norm lo hi (j.m, j.r)

let with_stride ~m ~r t = meet t (norm neg_inf pos_inf (m, r))

let contains t v =
  (not (is_bot t)) && t.lo <= v && v <= t.hi
  && (t.m = 0 || t.m = 1 || emod (v - t.r) t.m = 0)
  && (t.m <> 0 || t.r = v)

let contains_zero t = contains t 0

let may_equal a b =
  if is_bot a || is_bot b then false
  else max a.lo b.lo <= min a.hi b.hi && ccompat (a.m, a.r) (b.m, b.r)

(* --- Transfer functions ------------------------------------------------------ *)

let lift_cg (m, r) = norm neg_inf pos_inf (m, r)

let add a b =
  if is_bot a || is_bot b then bot
  else
    let cg = cadd (a.m, a.r) (b.m, b.r) in
    if fin a && fin b then norm (a.lo + b.lo) (a.hi + b.hi) cg else lift_cg cg

let add_const t c = add t (const c)

let sub a b =
  if is_bot a || is_bot b then bot
  else
    let cg = csub (a.m, a.r) (b.m, b.r) in
    if fin a && fin b then norm (a.lo - b.hi) (a.hi - b.lo) cg else lift_cg cg

let mul a b =
  if is_bot a || is_bot b then bot
  else
    let cg = cmul (a.m, a.r) (b.m, b.r) in
    if fin a && fin b then
      match
        ( mul_ovf a.lo b.lo,
          mul_ovf a.lo b.hi,
          mul_ovf a.hi b.lo,
          mul_ovf a.hi b.hi )
      with
      | Some p1, Some p2, Some p3, Some p4 ->
        norm (min (min p1 p2) (min p3 p4)) (max (max p1 p2) (max p3 p4)) cg
      | _ -> lift_cg cg
    else lift_cg cg

(* Concrete division truncates toward zero and yields 0 on a zero divisor;
   |result| never exceeds |dividend|. *)
let div a b =
  if is_bot a || is_bot b then bot
  else
    match (is_const a, is_const b) with
    | Some x, Some y -> const (if y = 0 then 0 else x / y)
    | _, Some c when c <> 0 && fin a ->
      let q1 = a.lo / c and q2 = a.hi / c in
      norm (min q1 q2) (max q2 q1) (1, 0)
    | _ ->
      if fin a then
        let mag = max (abs a.lo) (abs a.hi) in
        norm (-mag) mag (1, 0)
      else top

let rem a b =
  if is_bot a || is_bot b then bot
  else
    match (is_const a, is_const b) with
    | Some x, Some y -> const (if y = 0 then 0 else x mod y)
    | _, Some c when c <> 0 ->
      let k = abs c in
      let lo = if a.lo >= 0 then 0 else 1 - k
      and hi = if a.hi <= 0 then 0 else k - 1 in
      (* x ≡ r (mod m) with k | m and x ≥ 0 pins x mod k. *)
      let cg =
        if a.m > 0 && a.m mod k = 0 && a.lo >= 0 then (k, emod a.r k)
        else if a.m = 0 && a.r >= 0 then (0, a.r mod k)
        else (1, 0)
      in
      norm lo hi cg
    | _ ->
      if fin b then
        let k = max (abs b.lo) (abs b.hi) in
        if k = 0 then const 0
        else
          let lo = if a.lo >= 0 then 0 else 1 - k
          and hi = if a.hi <= 0 then 0 else k - 1 in
          norm lo hi (1, 0)
      else if a.lo >= 0 then norm 0 pos_inf (1, 0)
      else top

let nonneg t = (not (is_bot t)) && t.lo >= 0

(* Smallest power of two strictly above v (for bitwise hulls). *)
let pot_above v =
  let rec go p = if p > v && p > 0 then p else go (p * 2) in
  if v >= cap then pos_inf else go 1

let rec and_ a b =
  if is_bot a || is_bot b then bot
  else
    match (is_const a, is_const b) with
    | Some x, Some y -> const (x land y)
    | av, Some c when c >= 0 ->
      (* Result is a sub-mask of c: always within [0, c]. *)
      let cg =
        if is_pow2 (c + 1) then
          (* x land (2^k - 1) = x mod 2^k even for negative x. *)
          let k = c + 1 in
          match av with
          | Some x -> (0, emod x k)
          | None ->
            if a.m > 0 then
              let g = gcd a.m k in
              if g > 1 then (g, emod a.r g) else (1, 0)
            else (1, 0)
        else (1, 0)
      in
      (* If x already sits inside [0, c] of a power-of-two window, the
         mask is the identity. *)
      if is_pow2 (c + 1) && nonneg a && a.hi <= c then a
      else norm 0 c cg
    | Some c, _ when c >= 0 -> and_ b a
    | _ ->
      if nonneg a && nonneg b then
        norm 0 (min (if is_fin a.hi then a.hi else pos_inf)
                  (if is_fin b.hi then b.hi else pos_inf)) (1, 0)
      else top

let or_ a b =
  if is_bot a || is_bot b then bot
  else
    match (is_const a, is_const b) with
    | Some x, Some y -> const (x lor y)
    | _ ->
      if nonneg a && nonneg b && is_fin a.hi && is_fin b.hi then
        let hi = pot_above (max a.hi b.hi) - 1 in
        norm (max a.lo b.lo) hi (1, 0)
      else top

let xor a b =
  if is_bot a || is_bot b then bot
  else
    match (is_const a, is_const b) with
    | Some x, Some y -> const (x lxor y)
    | _ ->
      if nonneg a && nonneg b && is_fin a.hi && is_fin b.hi then
        norm 0 (pot_above (max a.hi b.hi) - 1) (1, 0)
      else top

let shl a b =
  if is_bot a || is_bot b then bot
  else
    match (is_const a, is_const b) with
    | Some x, Some y -> const (x lsl (y land 31))
    | _, Some s -> mul a (const (1 lsl (s land 31)))
    | _ -> if nonneg a then norm 0 pos_inf (1, 0) else top

let shr a b =
  if is_bot a || is_bot b then bot
  else
    match (is_const a, is_const b) with
    | Some x, Some y -> const (x asr (y land 31))
    | _, Some s ->
      let s = s land 31 in
      let sh v = if is_fin v then v asr s else v in
      norm (sh a.lo) (sh a.hi) (1, 0)
    | _ ->
      (* Arithmetic shift by an unknown (masked) amount moves the value
         toward 0 / -1. *)
      norm (min a.lo 0) (max a.hi 0) (1, 0)

let min_ a b =
  if is_bot a || is_bot b then bot
  else
    let j = cjoin (a.m, a.r) (b.m, b.r) in
    norm (min a.lo b.lo) (min a.hi b.hi) j

let max_ a b =
  if is_bot a || is_bot b then bot
  else
    let j = cjoin (a.m, a.r) (b.m, b.r) in
    norm (max a.lo b.lo) (max a.hi b.hi) j

let loop_var ~init ~limit ~step =
  if is_bot init || is_bot limit then bot
  else if step <= 0 then top
  else
    let hi = if is_fin limit.hi then limit.hi - 1 else pos_inf in
    let m, r =
      if init.m = 0 then (step, emod init.r step)
      else
        let g = gcd init.m step in
        if g <= 1 then (1, 0) else (g, emod init.r g)
    in
    norm init.lo hi (m, r)

let alu (op : Inst.alu_op) a b =
  match op with
  | Inst.Add -> add a b
  | Inst.Sub -> sub a b
  | Inst.Mul -> mul a b
  | Inst.Div -> div a b
  | Inst.Rem -> rem a b
  | Inst.And -> and_ a b
  | Inst.Or -> or_ a b
  | Inst.Xor -> xor a b
  | Inst.Shl -> shl a b
  | Inst.Shr -> shr a b
  | Inst.Min -> min_ a b
  | Inst.Max -> max_ a b

let bool_range = { lo = 0; hi = 1; m = 1; r = 0 }

let cmp (op : Inst.cmp_op) a b =
  if is_bot a || is_bot b then bot
  else
    let t = const 1 and f = const 0 in
    match op with
    | Inst.Eq ->
      if not (may_equal a b) then f
      else (match (is_const a, is_const b) with
        | Some x, Some y when x = y -> t
        | _ -> bool_range)
    | Inst.Ne ->
      if not (may_equal a b) then t
      else (match (is_const a, is_const b) with
        | Some x, Some y when x = y -> f
        | _ -> bool_range)
    | Inst.Lt ->
      if a.hi < b.lo then t else if a.lo >= b.hi then f else bool_range
    | Inst.Le ->
      if a.hi <= b.lo then t else if a.lo > b.hi then f else bool_range
    | Inst.Gt ->
      if a.lo > b.hi then t else if a.hi <= b.lo then f else bool_range
    | Inst.Ge ->
      if a.lo >= b.hi then t else if a.hi < b.lo then f else bool_range

(* --- Printing ----------------------------------------------------------------- *)

let pp ppf t =
  if is_bot t then Format.fprintf ppf "bot"
  else if is_top t then Format.fprintf ppf "top"
  else begin
    (match is_const t with
    | Some c -> Format.fprintf ppf "{%d}" c
    | None ->
      let b ppf v =
        if v = neg_inf then Format.fprintf ppf "-inf"
        else if v = pos_inf then Format.fprintf ppf "+inf"
        else Format.fprintf ppf "%d" v
      in
      Format.fprintf ppf "[%a,%a]" b t.lo b t.hi;
      if t.m > 1 then Format.fprintf ppf "=%d(mod %d)" t.r t.m)
  end

let to_string t = Format.asprintf "%a" pp t
