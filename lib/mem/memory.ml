module Ecc = Voltron_fault.Ecc

type t = { data : int array; mutable ecc : Ecc.t option }

let create n =
  if n <= 0 then invalid_arg "Memory.create: size must be positive";
  { data = Array.make n 0; ecc = None }

let size t = Array.length t.data

let attach_ecc t e = t.ecc <- Some e

let check t addr what =
  if addr < 0 || addr >= Array.length t.data then
    invalid_arg
      (Printf.sprintf "Memory.%s: address %d outside [0,%d)" what addr
         (Array.length t.data))

(* The fault-free path (no ECC shadow attached) is one bounds test and the
   array access; everything ECC hides behind the single [t.ecc] branch. *)
let read t addr =
  check t addr "read";
  match t.ecc with
  | None -> t.data.(addr)
  | Some e ->
    (match Ecc.check e ~addr with
    | Some golden -> t.data.(addr) <- golden
    | None -> ());
    t.data.(addr)

let write t addr v =
  check t addr "write";
  match t.ecc with
  | None -> t.data.(addr) <- v
  | Some e ->
    Ecc.overwrite e ~addr;
    t.data.(addr) <- v

let corrupt t addr ~flip =
  check t addr "corrupt";
  match t.ecc with
  | None -> ()  (* no ECC, no fault model: refuse to corrupt silently *)
  | Some e ->
    Ecc.note_flip e ~addr ~golden:t.data.(addr);
    t.data.(addr) <- flip t.data.(addr)

(* Architectural value of [addr] with no side effect: what a read would
   return, but without consuming the ECC entry, counting a correction, or
   charging a penalty. The runtime sanitizer's window into memory. *)
let peek t addr =
  check t addr "peek";
  match t.ecc with
  | None -> t.data.(addr)
  | Some e -> (
    match Ecc.peek e ~addr with
    | Some golden -> golden
    | None -> t.data.(addr))

(* Corrupt a word *without* telling the ECC model — a fault past the
   detection capability of the code (e.g. a multi-bit upset). Nothing in
   the recovery machinery can see it; only the sanitizer's shadow memory
   can. Test-only: the fault injector proper goes through [corrupt]. *)
let test_tamper t addr v =
  check t addr "test_tamper";
  t.data.(addr) <- v

let scrub t =
  match t.ecc with
  | None -> ()
  | Some e -> Ecc.scrub e ~f:(fun addr golden -> t.data.(addr) <- golden)

let load_init t init = List.iter (fun (addr, v) -> write t addr v) init

let snapshot t = Array.copy t.data

let restore t snap =
  if Array.length snap <> Array.length t.data then
    invalid_arg "Memory.restore: snapshot size mismatch";
  Array.blit snap 0 t.data 0 (Array.length snap)

let equal a b = a.data = b.data

let checksum_prefix t n =
  if n < 0 || n > Array.length t.data then
    invalid_arg "Memory.checksum_prefix: bad length";
  let h = ref 0x2bf29ce484222325 in
  for i = 0 to n - 1 do
    h := !h lxor t.data.(i);
    h := !h * 0x100000001b3
  done;
  !h land max_int

let checksum t = checksum_prefix t (Array.length t.data)
