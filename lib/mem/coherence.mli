(** Bus-based MOESI-coherent cache hierarchy, timing model.

    Matches the paper's memory system (§3, §5.1): per-core private L1
    instruction and data caches kept coherent by snooping on a shared bus
    with the MOESI protocol, backed by a shared (banked) L2 and main
    memory. The model is tag/state + latency only; architectural data lives
    in {!Memory}.

    Timing uses a busy-until bus: a miss acquires the bus no earlier than
    the previous transaction released it, so cores contend for coherence
    bandwidth. Instruction fetches occupy a per-core address space disjoint
    from data (each core's code is its own memory space, §3.2). *)

type config = {
  line_words : int;  (** words per cache line *)
  l1d_sets : int;
  l1d_ways : int;
  l1i_sets : int;
  l1i_ways : int;
  l2_sets : int;
  l2_ways : int;
  lat_l1 : int;  (** L1 hit latency, cycles *)
  lat_l2 : int;  (** miss served by L2 *)
  lat_mem : int;  (** miss served by main memory *)
  lat_c2c : int;  (** miss served cache-to-cache by a peer L1 *)
  lat_upgrade : int;  (** write hit on a shared line (invalidation round) *)
  bus_occupancy : int;  (** cycles the bus stays busy per transaction *)
}

val default_config : config
(** The paper's setup: 4 kB 2-way L1 I and D, 128 kB 4-way shared L2,
    32-byte lines. *)

type kind = Ifetch | Dload | Dstore

type stats = {
  mutable accesses : int;
  mutable l1d_misses : int;
  mutable l1i_misses : int;
  mutable l2_misses : int;
  mutable c2c_transfers : int;
  mutable upgrades : int;
  mutable writebacks : int;
  mutable bus_wait_cycles : int;
}

type t

val create : config -> n_cores:int -> t
val config : t -> config

val access : t -> now:int -> core:int -> kind -> int -> int
(** [access t ~now ~core kind addr] simulates the access and returns its
    completion time (strictly greater than [now] only when it misses or
    needs the bus; an L1 hit completes at [now + lat_l1]). [addr] is a word
    address: data addresses for [Dload]/[Dstore], the core's bundle address
    for [Ifetch]. All state (MOESI, LRU, L2, bus busy time) is updated. *)

val would_hit : t -> core:int -> kind -> int -> bool
(** Non-destructive hit test (no state update): used by the profiler. *)

val stats : t -> core:int -> stats
val total_stats : t -> stats

val set_monitor : t -> (core:int -> completion:int -> kind -> int -> unit) -> unit
(** Attach an access monitor (the runtime sanitizer, the causal
    profiler): called after every {!access}, once the MOESI transition for
    that access has fully landed, with the accessing core, the cycle the
    access completes (the fill time — [completion - now] above the L1 hit
    latency marks a miss-fill edge), the access kind and the word address.
    Passive — the callback must not mutate the hierarchy. Unset (the
    default), the hot path pays a single branch. *)

val l1d_line_states : t -> addr:int -> int * (int * Cache.state) list
(** The data line holding word [addr], and every core whose L1D currently
    holds that line with its MOESI state — the per-line view the sanitizer
    checks the single-writer/multiple-reader invariant against after each
    access. Does not touch LRU. *)

val check_invariants : t -> (string, string) result
(** MOESI safety over every line: at most one cache in M or E and then no
    other sharer; at most one owner (O); an O line may coexist only with S
    copies. [Error] describes the first violation. *)
