(** Coherent cache hierarchy, timing model — two interchangeable backends.

    Matches the paper's memory system (§3, §5.1): per-core private L1
    instruction and data caches backed by a shared (banked) L2 and main
    memory. The model is tag/state + latency only; architectural data lives
    in {!Memory}.

    Coherence is a config choice ([protocol]):

    - [Snoop] (the default, the paper's setup): bus-snooped MOESI. A miss
      acquires a single busy-until bus, snoops every peer L1D and may be
      served cache-to-cache — cores contend for one global resource.
    - [Directory]: home-based MESI. Every data line has a home bank
      ([line mod n_cores]) holding its owner and a sharer bitset; misses
      go point-to-point to the home, which forwards to the owner (a 3-hop
      indirection) or serves from L2/memory, and invalidations fan out
      only to recorded sharers. Each home bank is its own busy-until
      resource, so coherence bandwidth scales with the core count.

    Both backends drive the same {!Cache} tag arrays (the directory's MESI
    states are the MOESI subset that never uses O), fire the same access
    monitor, and expose the same [l1d_line_states]/[check_invariants]
    introspection — the sanitizer's single-writer oracle and the causal
    profiler's fill-completion hook are protocol-independent by
    construction.

    Instruction fetches occupy a per-core address space disjoint from data
    (each core's code is its own memory space, §3.2). *)

type protocol = Snoop | Directory

val protocol_name : protocol -> string
(** ["snoop"] / ["directory"]. *)

val protocol_of_string : string -> (protocol, string) result

type config = {
  line_words : int;  (** words per cache line *)
  l1d_sets : int;
  l1d_ways : int;
  l1i_sets : int;
  l1i_ways : int;
  l2_sets : int;
  l2_ways : int;
  lat_l1 : int;  (** L1 hit latency, cycles *)
  lat_l2 : int;  (** miss served by L2 *)
  lat_mem : int;  (** miss served by main memory *)
  lat_c2c : int;  (** miss served cache-to-cache by a peer L1 *)
  lat_upgrade : int;  (** write hit on a shared line (invalidation round) *)
  bus_occupancy : int;  (** [Snoop]: cycles the bus stays busy per transaction *)
  protocol : protocol;  (** which backend services misses *)
  dir_lat_lookup : int;  (** [Directory]: directory access at the home bank *)
  dir_lat_msg : int;  (** [Directory]: one-way requester->home message *)
  dir_lat_fwd : int;  (** [Directory]: home->owner forward hop (indirection) *)
  dir_lat_inv : int;  (** [Directory]: invalidation round to sharers (with acks) *)
  dir_occupancy : int;  (** [Directory]: cycles a home bank stays busy per transaction *)
}

val default_config : config
(** The paper's setup: 4 kB 2-way L1 I and D, 128 kB 4-way shared L2,
    32-byte lines, [protocol = Snoop]. The directory pricing defaults make
    an uncontended directory miss a few cycles dearer than a snooped one
    (message + lookup), while a home bank's occupancy is half the bus's —
    the crossover ingredients. *)

type kind = Ifetch | Dload | Dstore

type stats = {
  mutable accesses : int;
  mutable l1d_misses : int;
  mutable l1i_misses : int;
  mutable l2_misses : int;
  mutable c2c_transfers : int;
  mutable upgrades : int;
  mutable writebacks : int;
  mutable bus_wait_cycles : int;
      (** serialization wait: bus acquisition ([Snoop]) or home-bank
          acquisition ([Directory]) *)
  mutable dir_lookups : int;  (** [Directory]: home directory accesses *)
  mutable dir_invalidations : int;
      (** [Directory]: per-sharer invalidation messages sent *)
  mutable dir_indirections : int;
      (** [Directory]: 3-hop requester->home->owner forwards *)
}

type t

val create : config -> n_cores:int -> t
val config : t -> config

val access : t -> now:int -> core:int -> kind -> int -> int
(** [access t ~now ~core kind addr] simulates the access and returns its
    completion time (strictly greater than [now] only when it misses or
    needs the bus/home bank; an L1 hit completes at [now + lat_l1]).
    [addr] is a word address: data addresses for [Dload]/[Dstore], the
    core's bundle address for [Ifetch]. All state (MOESI/MESI, LRU, L2,
    bus or home-bank busy time, directory entries) is updated. *)

val would_hit : t -> core:int -> kind -> int -> bool
(** Non-destructive hit test (no state update): used by the profiler. *)

val stats : t -> core:int -> stats
val total_stats : t -> stats

val set_monitor : t -> (core:int -> completion:int -> kind -> int -> unit) -> unit
(** Attach an access monitor (the runtime sanitizer, the causal
    profiler): called after every {!access}, once the coherence transition
    for that access has fully landed — under either backend — with the
    accessing core, the cycle the access completes (the fill time —
    [completion - now] above the L1 hit latency marks a miss-fill edge),
    the access kind and the word address. Passive — the callback must not
    mutate the hierarchy. Unset (the default), the hot path pays a single
    branch. *)

val l1d_line_states : t -> addr:int -> int * (int * Cache.state) list
(** The data line holding word [addr], and every core whose L1D currently
    holds that line with its state — the per-line view the sanitizer
    checks the single-writer/multiple-reader invariant against after each
    access. Protocol-independent (MESI states are a MOESI subset). Does
    not touch LRU. *)

val dir_sharers : t -> addr:int -> int list
(** [Directory] introspection (tests): the recorded sharer set for the
    data line holding word [addr], ascending; [[]] when the directory has
    no entry. Always [[]] under [Snoop]. *)

val dir_owner : t -> addr:int -> int option
(** [Directory] introspection (tests): the recorded owner (the core
    holding the line M/E), if any. *)

val test_inject_stale_sharer : t -> unit
(** Test backdoor: arm a one-shot protocol bug — the directory skips
    invalidating the highest-numbered remote sharer on the next write, so
    a stale S copy coexists with the writer's M copy. Exists to prove the
    sanitizer's single-writer oracle catches real directory bugs; never
    set in real runs. *)

val check_invariants : t -> (string, string) result
(** Coherence safety over every line: at most one cache in M or E and then
    no other sharer; at most one owner (O); an O line may coexist only
    with S copies. Under [Directory], additionally checks
    directory-cache agreement: every valid L1D copy is a recorded sharer,
    every recorded sharer holds a valid copy, and M/E copies are the
    recorded owner. [Error] describes the first violation. *)
