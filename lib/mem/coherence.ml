type config = {
  line_words : int;
  l1d_sets : int;
  l1d_ways : int;
  l1i_sets : int;
  l1i_ways : int;
  l2_sets : int;
  l2_ways : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_mem : int;
  lat_c2c : int;
  lat_upgrade : int;
  bus_occupancy : int;
}

(* 4 kB = 1024 words; 8-word (32 B) lines -> 128 lines; 2-way -> 64 sets.
   128 kB = 32768 words -> 4096 lines; 4-way -> 1024 sets. *)
let default_config =
  {
    line_words = 8;
    l1d_sets = 64;
    l1d_ways = 2;
    l1i_sets = 64;
    l1i_ways = 2;
    l2_sets = 1024;
    l2_ways = 4;
    lat_l1 = 1;
    lat_l2 = 8;
    lat_mem = 100;
    lat_c2c = 12;
    lat_upgrade = 3;
    bus_occupancy = 4;
  }

type kind = Ifetch | Dload | Dstore

type stats = {
  mutable accesses : int;
  mutable l1d_misses : int;
  mutable l1i_misses : int;
  mutable l2_misses : int;
  mutable c2c_transfers : int;
  mutable upgrades : int;
  mutable writebacks : int;
  mutable bus_wait_cycles : int;
}

let fresh_stats () =
  {
    accesses = 0;
    l1d_misses = 0;
    l1i_misses = 0;
    l2_misses = 0;
    c2c_transfers = 0;
    upgrades = 0;
    writebacks = 0;
    bus_wait_cycles = 0;
  }

type t = {
  cfg : config;
  n_cores : int;
  l1d : Cache.t array;
  l1i : Cache.t array;
  l2 : Cache.t;
  mutable bus_free : int;
  per_core : stats array;
  (* Runtime sanitizer hook: fired after every access, once the protocol
     state transition for that access has fully landed. [None] (the
     default) keeps the hot path to a single branch. *)
  mutable monitor : (core:int -> completion:int -> kind -> int -> unit) option;
}

let create cfg ~n_cores =
  {
    cfg;
    n_cores;
    l1d = Array.init n_cores (fun _ -> Cache.create ~sets:cfg.l1d_sets ~ways:cfg.l1d_ways);
    l1i = Array.init n_cores (fun _ -> Cache.create ~sets:cfg.l1i_sets ~ways:cfg.l1i_ways);
    l2 = Cache.create ~sets:cfg.l2_sets ~ways:cfg.l2_ways;
    bus_free = 0;
    per_core = Array.init n_cores (fun _ -> fresh_stats ());
    monitor = None;
  }

let set_monitor t f = t.monitor <- Some f

let config t = t.cfg

let stats t ~core = t.per_core.(core)

let total_stats t =
  let acc = fresh_stats () in
  Array.iter
    (fun s ->
      acc.accesses <- acc.accesses + s.accesses;
      acc.l1d_misses <- acc.l1d_misses + s.l1d_misses;
      acc.l1i_misses <- acc.l1i_misses + s.l1i_misses;
      acc.l2_misses <- acc.l2_misses + s.l2_misses;
      acc.c2c_transfers <- acc.c2c_transfers + s.c2c_transfers;
      acc.upgrades <- acc.upgrades + s.upgrades;
      acc.writebacks <- acc.writebacks + s.writebacks;
      acc.bus_wait_cycles <- acc.bus_wait_cycles + s.bus_wait_cycles)
    t.per_core;
  acc

(* Instruction lines live in a per-core address space disjoint from data
   lines; bit 40 marks instruction space, bits 32.. carry the core id. *)
let iline t core addr = (1 lsl 40) lor (core lsl 32) lor (addr / t.cfg.line_words)

let dline t addr = addr / t.cfg.line_words

(* Acquire the bus at the earliest of [now]/[bus_free]; account wait time. *)
let acquire_bus t ~now ~core =
  let start = max now t.bus_free in
  t.per_core.(core).bus_wait_cycles <-
    t.per_core.(core).bus_wait_cycles + (start - now);
  t.bus_free <- start + t.cfg.bus_occupancy;
  start

(* Fill a line into [cache], writing back a dirty victim to L2 (and keeping
   L2 inclusive enough for timing purposes). *)
let fill t ~core cache line st =
  match Cache.insert cache line st with
  | None -> ()
  | Some (victim, vstate) ->
    if vstate = Cache.M || vstate = Cache.O then begin
      t.per_core.(core).writebacks <- t.per_core.(core).writebacks + 1;
      t.bus_free <- t.bus_free + t.cfg.bus_occupancy;
      (* Victim's data returns to L2: ensure its tag is present. *)
      if Cache.find t.l2 victim = None then ignore (Cache.insert t.l2 victim Cache.S)
      else Cache.touch t.l2 victim
    end

(* Ensure the line is present in L2 (timing inclusion); L2 evictions of
   dirty lines cost bus occupancy. *)
let l2_fill t line =
  match Cache.find t.l2 line with
  | Some _ -> Cache.touch t.l2 line
  | None -> (
    match Cache.insert t.l2 line Cache.S with
    | None -> ()
    | Some (_victim, vstate) ->
      if vstate = Cache.M || vstate = Cache.O then
        t.bus_free <- t.bus_free + t.cfg.bus_occupancy)

(* Snoop every other core's L1D for [line]; returns the supplier (a core
   holding the line M/O/E) if any, and whether anyone at all holds it. *)
let snoop t ~core line =
  let supplier = ref None in
  let sharer = ref false in
  for c = 0 to t.n_cores - 1 do
    if c <> core then
      match Cache.find t.l1d.(c) line with
      | Some (Cache.M | Cache.O | Cache.E) ->
        sharer := true;
        if !supplier = None then supplier := Some c
      | Some Cache.S -> sharer := true
      | Some Cache.I | None -> ()
  done;
  (!supplier, !sharer)

(* Downgrade remote copies on a read miss: M -> O, E -> S. *)
let downgrade_for_read t ~core line =
  for c = 0 to t.n_cores - 1 do
    if c <> core then
      match Cache.find t.l1d.(c) line with
      | Some Cache.M -> Cache.set_state t.l1d.(c) line Cache.O
      | Some Cache.E -> Cache.set_state t.l1d.(c) line Cache.S
      | Some (Cache.O | Cache.S | Cache.I) | None -> ()
  done

(* Invalidate every remote copy on a write (RdX / upgrade). *)
let invalidate_remotes t ~core line =
  for c = 0 to t.n_cores - 1 do
    if c <> core then Cache.invalidate t.l1d.(c) line
  done

(* L1 data-side access; [write] distinguishes store from load. *)
let access_data t ~now ~core ~write addr =
  let st = t.per_core.(core) in
  st.accesses <- st.accesses + 1;
  let line = dline t addr in
  let l1 = t.l1d.(core) in
  let hit_state = Cache.find l1 line in
  match hit_state with
  | Some _ when not write ->
    Cache.touch l1 line;
    now + t.cfg.lat_l1
  | Some (Cache.M | Cache.E) ->
    Cache.touch l1 line;
    Cache.set_state l1 line Cache.M;
    now + t.cfg.lat_l1
  | Some (Cache.O | Cache.S) ->
    (* Write hit on a shared line: upgrade — invalidate other sharers over
       the bus, no data transfer. *)
    st.upgrades <- st.upgrades + 1;
    let start = acquire_bus t ~now ~core in
    invalidate_remotes t ~core line;
    Cache.touch l1 line;
    Cache.set_state l1 line Cache.M;
    start + t.cfg.lat_upgrade
  | Some Cache.I | None ->
    (* L1 miss: bus transaction; serviced by a peer L1 (cache-to-cache),
       the shared L2, or main memory. *)
    st.l1d_misses <- st.l1d_misses + 1;
    let start = acquire_bus t ~now ~core in
    let supplier, sharer = snoop t ~core line in
    let duration =
      match supplier with
      | Some _ ->
        st.c2c_transfers <- st.c2c_transfers + 1;
        t.cfg.lat_c2c
      | None -> (
        match Cache.find t.l2 line with
        | Some _ ->
          Cache.touch t.l2 line;
          t.cfg.lat_l2
        | None ->
          st.l2_misses <- st.l2_misses + 1;
          l2_fill t line;
          t.cfg.lat_mem)
    in
    let my_state =
      if write then begin
        invalidate_remotes t ~core line;
        Cache.M
      end
      else begin
        downgrade_for_read t ~core line;
        if sharer then Cache.S else Cache.E
      end
    in
    fill t ~core l1 line my_state;
    start + duration

let access_inst t ~now ~core addr =
  let st = t.per_core.(core) in
  let line = iline t core addr in
  let l1 = t.l1i.(core) in
  match Cache.find l1 line with
  | Some _ ->
    Cache.touch l1 line;
    now + t.cfg.lat_l1
  | None ->
    st.l1i_misses <- st.l1i_misses + 1;
    let start = acquire_bus t ~now ~core in
    let duration =
      match Cache.find t.l2 line with
      | Some _ ->
        Cache.touch t.l2 line;
        t.cfg.lat_l2
      | None ->
        st.l2_misses <- st.l2_misses + 1;
        l2_fill t line;
        t.cfg.lat_mem
    in
    (match Cache.insert l1 line Cache.S with
    | None | Some _ -> () (* code is clean; victims need no writeback *));
    start + duration

let access t ~now ~core kind addr =
  let completion =
    match kind with
    | Ifetch -> access_inst t ~now ~core addr
    | Dload -> access_data t ~now ~core ~write:false addr
    | Dstore -> access_data t ~now ~core ~write:true addr
  in
  (match t.monitor with None -> () | Some f -> f ~core ~completion kind addr);
  completion

let l1d_line_states t ~addr =
  let line = dline t addr in
  let states = ref [] in
  for c = t.n_cores - 1 downto 0 do
    match Cache.find t.l1d.(c) line with
    | Some st -> states := (c, st) :: !states
    | None -> ()
  done;
  (line, !states)

let would_hit t ~core kind addr =
  match kind with
  | Ifetch -> Cache.find t.l1i.(core) (iline t core addr) <> None
  | Dload -> Cache.find t.l1d.(core) (dline t addr) <> None
  | Dstore -> (
    match Cache.find t.l1d.(core) (dline t addr) with
    | Some (Cache.M | Cache.E) -> true
    | Some (Cache.O | Cache.S | Cache.I) | None -> false)

let check_invariants t =
  (* Gather, per line, the multiset of L1D states across cores. *)
  let lines : (int, Cache.state list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun cache ->
      List.iter
        (fun (line, st) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt lines line) in
          Hashtbl.replace lines line (st :: cur))
        (Cache.valid_lines cache))
    t.l1d;
  let violation = ref None in
  Hashtbl.iter
    (fun line states ->
      if !violation = None then begin
        let count st = List.length (List.filter (fun s -> s = st) states) in
        let m = count Cache.M and e = count Cache.E and o = count Cache.O in
        let total = List.length states in
        if m + e > 1 then
          violation := Some (Printf.sprintf "line %d: %d M/E copies" line (m + e))
        else if (m = 1 || e = 1) && total > 1 then
          violation :=
            Some (Printf.sprintf "line %d: M/E copy coexists with %d others" line (total - 1))
        else if o > 1 then
          violation := Some (Printf.sprintf "line %d: %d owners" line o)
      end)
    lines;
  match !violation with None -> Ok "coherent" | Some msg -> Error msg
