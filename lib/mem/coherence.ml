(* Two interchangeable coherence backends behind one timing interface:

   - [Snoop]: the paper's bus-snooped MOESI protocol. Every miss acquires a
     single shared bus (busy-until), snoops every peer L1D, and may be
     served cache-to-cache. Broadcast is free of bookkeeping but the bus is
     a global serialization point — the scaling wall at high core counts.

   - [Directory]: a home-based MESI protocol. Every data line has a home
     bank (line mod n_cores) holding a directory entry — the owner (the
     unique core in M/E, or none) and a sharer bitset. Misses go
     point-to-point to the home, which forwards to the owner (a 3-hop
     indirection) or answers from L2/memory, and invalidations fan out
     only to actual sharers. Serialization is per home bank, so coherence
     bandwidth scales with the core count.

   Both backends drive the same {!Cache} tag arrays (MESI states are the
   MOESI subset that never uses O), fire the same access monitor, and are
   observable through the same [l1d_line_states] / [check_invariants]
   surface — which is what keeps the sanitizer's single-writer oracle and
   the causal profiler protocol-independent. *)

type protocol = Snoop | Directory

let protocol_name = function Snoop -> "snoop" | Directory -> "directory"

let protocol_of_string = function
  | "snoop" -> Ok Snoop
  | "directory" -> Ok Directory
  | s ->
    Error (Printf.sprintf "unknown coherence protocol %S (snoop, directory)" s)

type config = {
  line_words : int;
  l1d_sets : int;
  l1d_ways : int;
  l1i_sets : int;
  l1i_ways : int;
  l2_sets : int;
  l2_ways : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_mem : int;
  lat_c2c : int;
  lat_upgrade : int;
  bus_occupancy : int;
  protocol : protocol;
  dir_lat_lookup : int;
  dir_lat_msg : int;
  dir_lat_fwd : int;
  dir_lat_inv : int;
  dir_occupancy : int;
}

(* 4 kB = 1024 words; 8-word (32 B) lines -> 128 lines; 2-way -> 64 sets.
   128 kB = 32768 words -> 4096 lines; 4-way -> 1024 sets.

   Directory pricing: a miss pays one request message to the home plus the
   directory lookup before any data moves, so its uncontended cost is a
   few cycles above the snooped bus — but a home bank is busy for
   [dir_occupancy] (< [bus_occupancy]) cycles and there are n_cores banks,
   so contended throughput scales where the single bus saturates. *)
let default_config =
  {
    line_words = 8;
    l1d_sets = 64;
    l1d_ways = 2;
    l1i_sets = 64;
    l1i_ways = 2;
    l2_sets = 1024;
    l2_ways = 4;
    lat_l1 = 1;
    lat_l2 = 8;
    lat_mem = 100;
    lat_c2c = 12;
    lat_upgrade = 3;
    bus_occupancy = 4;
    protocol = Snoop;
    dir_lat_lookup = 2;
    dir_lat_msg = 2;
    dir_lat_fwd = 2;
    dir_lat_inv = 4;
    dir_occupancy = 2;
  }

type kind = Ifetch | Dload | Dstore

type stats = {
  mutable accesses : int;
  mutable l1d_misses : int;
  mutable l1i_misses : int;
  mutable l2_misses : int;
  mutable c2c_transfers : int;
  mutable upgrades : int;
  mutable writebacks : int;
  mutable bus_wait_cycles : int;
  mutable dir_lookups : int;
  mutable dir_invalidations : int;
  mutable dir_indirections : int;
}

let fresh_stats () =
  {
    accesses = 0;
    l1d_misses = 0;
    l1i_misses = 0;
    l2_misses = 0;
    c2c_transfers = 0;
    upgrades = 0;
    writebacks = 0;
    bus_wait_cycles = 0;
    dir_lookups = 0;
    dir_invalidations = 0;
    dir_indirections = 0;
  }

(* Sharer bitsets: 62 bits per word so any core count fits (OCaml ints are
   63-bit; the sweeps go to 64 cores). *)
module Bitset = struct
  type t = int array

  let bits_per_word = 62
  let create n = Array.make (max 1 ((n + bits_per_word - 1) / bits_per_word)) 0
  let add t c = t.(c / bits_per_word) <- t.(c / bits_per_word) lor (1 lsl (c mod bits_per_word))

  let remove t c =
    t.(c / bits_per_word) <- t.(c / bits_per_word) land lnot (1 lsl (c mod bits_per_word))

  let mem t c = t.(c / bits_per_word) land (1 lsl (c mod bits_per_word)) <> 0
  let is_empty t = Array.for_all (fun w -> w = 0) t

  let iter f t ~n =
    for c = 0 to n - 1 do
      if mem t c then f c
    done

  let to_list t ~n =
    let acc = ref [] in
    for c = n - 1 downto 0 do
      if mem t c then acc := c :: !acc
    done;
    !acc
end

(* One directory entry per line with at least one cached copy: [sharers]
   is every core whose L1D holds the line (any valid state); [owner] is
   the unique core holding it M/E (always also a sharer), or -1. *)
type dir_entry = { mutable owner : int; sharers : Bitset.t }

type t = {
  cfg : config;
  n_cores : int;
  l1d : Cache.t array;
  l1i : Cache.t array;
  l2 : Cache.t;
  mutable bus_free : int;
  (* Directory backend: per-home-bank busy-until and the line -> entry map.
     Both stay empty under [Snoop]. *)
  home_free : int array;
  dir : (int, dir_entry) Hashtbl.t;
  (* Test backdoor: when set, the directory "forgets" to invalidate the
     highest-numbered remote sharer on the next write — the known-bad
     fixture the sanitizer's single-writer oracle must catch. *)
  mutable stale_sharer_bug : bool;
  per_core : stats array;
  (* Runtime sanitizer hook: fired after every access, once the protocol
     state transition for that access has fully landed. [None] (the
     default) keeps the hot path to a single branch. *)
  mutable monitor : (core:int -> completion:int -> kind -> int -> unit) option;
}

let create cfg ~n_cores =
  {
    cfg;
    n_cores;
    l1d = Array.init n_cores (fun _ -> Cache.create ~sets:cfg.l1d_sets ~ways:cfg.l1d_ways);
    l1i = Array.init n_cores (fun _ -> Cache.create ~sets:cfg.l1i_sets ~ways:cfg.l1i_ways);
    l2 = Cache.create ~sets:cfg.l2_sets ~ways:cfg.l2_ways;
    bus_free = 0;
    home_free = Array.make n_cores 0;
    dir = Hashtbl.create 256;
    stale_sharer_bug = false;
    per_core = Array.init n_cores (fun _ -> fresh_stats ());
    monitor = None;
  }

let set_monitor t f = t.monitor <- Some f

let config t = t.cfg

let stats t ~core = t.per_core.(core)

let total_stats t =
  let acc = fresh_stats () in
  Array.iter
    (fun s ->
      acc.accesses <- acc.accesses + s.accesses;
      acc.l1d_misses <- acc.l1d_misses + s.l1d_misses;
      acc.l1i_misses <- acc.l1i_misses + s.l1i_misses;
      acc.l2_misses <- acc.l2_misses + s.l2_misses;
      acc.c2c_transfers <- acc.c2c_transfers + s.c2c_transfers;
      acc.upgrades <- acc.upgrades + s.upgrades;
      acc.writebacks <- acc.writebacks + s.writebacks;
      acc.bus_wait_cycles <- acc.bus_wait_cycles + s.bus_wait_cycles;
      acc.dir_lookups <- acc.dir_lookups + s.dir_lookups;
      acc.dir_invalidations <- acc.dir_invalidations + s.dir_invalidations;
      acc.dir_indirections <- acc.dir_indirections + s.dir_indirections)
    t.per_core;
  acc

(* Instruction lines live in a per-core address space disjoint from data
   lines; bit 40 marks instruction space, bits 32.. carry the core id. *)
let iline t core addr = (1 lsl 40) lor (core lsl 32) lor (addr / t.cfg.line_words)

let dline t addr = addr / t.cfg.line_words

(* --- Snoop backend (the paper's bus-snooped MOESI) ------------------------- *)

(* Acquire the bus at the earliest of [now]/[bus_free]; account wait time. *)
let acquire_bus t ~now ~core =
  let start = max now t.bus_free in
  t.per_core.(core).bus_wait_cycles <-
    t.per_core.(core).bus_wait_cycles + (start - now);
  t.bus_free <- start + t.cfg.bus_occupancy;
  start

(* Fill a line into [cache], writing back a dirty victim to L2 (and keeping
   L2 inclusive enough for timing purposes). *)
let fill t ~core cache line st =
  match Cache.insert cache line st with
  | None -> ()
  | Some (victim, vstate) ->
    if vstate = Cache.M || vstate = Cache.O then begin
      t.per_core.(core).writebacks <- t.per_core.(core).writebacks + 1;
      t.bus_free <- t.bus_free + t.cfg.bus_occupancy;
      (* Victim's data returns to L2: ensure its tag is present. *)
      if Cache.find t.l2 victim = None then ignore (Cache.insert t.l2 victim Cache.S)
      else Cache.touch t.l2 victim
    end

(* Ensure the line is present in L2 (timing inclusion); L2 evictions of
   dirty lines cost bus occupancy. *)
let l2_fill t line =
  match Cache.find t.l2 line with
  | Some _ -> Cache.touch t.l2 line
  | None -> (
    match Cache.insert t.l2 line Cache.S with
    | None -> ()
    | Some (_victim, vstate) ->
      if vstate = Cache.M || vstate = Cache.O then
        t.bus_free <- t.bus_free + t.cfg.bus_occupancy)

(* Snoop every other core's L1D for [line]; returns the supplier (a core
   holding the line M/O/E) if any, and whether anyone at all holds it. *)
let snoop t ~core line =
  let supplier = ref None in
  let sharer = ref false in
  for c = 0 to t.n_cores - 1 do
    if c <> core then
      match Cache.find t.l1d.(c) line with
      | Some (Cache.M | Cache.O | Cache.E) ->
        sharer := true;
        if !supplier = None then supplier := Some c
      | Some Cache.S -> sharer := true
      | Some Cache.I | None -> ()
  done;
  (!supplier, !sharer)

(* Downgrade remote copies on a read miss: M -> O, E -> S. *)
let downgrade_for_read t ~core line =
  for c = 0 to t.n_cores - 1 do
    if c <> core then
      match Cache.find t.l1d.(c) line with
      | Some Cache.M -> Cache.set_state t.l1d.(c) line Cache.O
      | Some Cache.E -> Cache.set_state t.l1d.(c) line Cache.S
      | Some (Cache.O | Cache.S | Cache.I) | None -> ()
  done

(* Invalidate every remote copy on a write (RdX / upgrade). *)
let invalidate_remotes t ~core line =
  for c = 0 to t.n_cores - 1 do
    if c <> core then Cache.invalidate t.l1d.(c) line
  done

(* L1 data-side access; [write] distinguishes store from load. *)
let access_data t ~now ~core ~write addr =
  let st = t.per_core.(core) in
  st.accesses <- st.accesses + 1;
  let line = dline t addr in
  let l1 = t.l1d.(core) in
  let hit_state = Cache.find l1 line in
  match hit_state with
  | Some _ when not write ->
    Cache.touch l1 line;
    now + t.cfg.lat_l1
  | Some (Cache.M | Cache.E) ->
    Cache.touch l1 line;
    Cache.set_state l1 line Cache.M;
    now + t.cfg.lat_l1
  | Some (Cache.O | Cache.S) ->
    (* Write hit on a shared line: upgrade — invalidate other sharers over
       the bus, no data transfer. *)
    st.upgrades <- st.upgrades + 1;
    let start = acquire_bus t ~now ~core in
    invalidate_remotes t ~core line;
    Cache.touch l1 line;
    Cache.set_state l1 line Cache.M;
    start + t.cfg.lat_upgrade
  | Some Cache.I | None ->
    (* L1 miss: bus transaction; serviced by a peer L1 (cache-to-cache),
       the shared L2, or main memory. *)
    st.l1d_misses <- st.l1d_misses + 1;
    let start = acquire_bus t ~now ~core in
    let supplier, sharer = snoop t ~core line in
    let duration =
      match supplier with
      | Some _ ->
        st.c2c_transfers <- st.c2c_transfers + 1;
        t.cfg.lat_c2c
      | None -> (
        match Cache.find t.l2 line with
        | Some _ ->
          Cache.touch t.l2 line;
          t.cfg.lat_l2
        | None ->
          st.l2_misses <- st.l2_misses + 1;
          l2_fill t line;
          t.cfg.lat_mem)
    in
    let my_state =
      if write then begin
        invalidate_remotes t ~core line;
        Cache.M
      end
      else begin
        downgrade_for_read t ~core line;
        if sharer then Cache.S else Cache.E
      end
    in
    fill t ~core l1 line my_state;
    start + duration

let access_inst t ~now ~core addr =
  let st = t.per_core.(core) in
  let line = iline t core addr in
  let l1 = t.l1i.(core) in
  match Cache.find l1 line with
  | Some _ ->
    Cache.touch l1 line;
    now + t.cfg.lat_l1
  | None ->
    st.l1i_misses <- st.l1i_misses + 1;
    let start = acquire_bus t ~now ~core in
    let duration =
      match Cache.find t.l2 line with
      | Some _ ->
        Cache.touch t.l2 line;
        t.cfg.lat_l2
      | None ->
        st.l2_misses <- st.l2_misses + 1;
        l2_fill t line;
        t.cfg.lat_mem
    in
    (match Cache.insert l1 line Cache.S with
    | None | Some _ -> () (* code is clean; victims need no writeback *));
    start + duration

(* --- Directory backend (home-based MESI) ----------------------------------- *)

let home_of t line = line mod t.n_cores

(* Acquire the line's home bank; each bank is its own busy-until resource,
   so contention is per home, not global. Wait time lands in the same
   [bus_wait_cycles] counter (it is interconnect/serialization wait either
   way). *)
let acquire_home t ~now ~core home =
  let start = max now t.home_free.(home) in
  t.per_core.(core).bus_wait_cycles <-
    t.per_core.(core).bus_wait_cycles + (start - now);
  t.home_free.(home) <- start + t.cfg.dir_occupancy;
  start

let dir_entry t line =
  match Hashtbl.find_opt t.dir line with
  | Some e -> e
  | None ->
    let e = { owner = -1; sharers = Bitset.create t.n_cores } in
    Hashtbl.add t.dir line e;
    e

(* Drop [core]'s copy from the line's entry (an eviction notification: the
   directory tracks precise sharers, so silent evictions are not allowed). *)
let dir_forget t ~core line =
  match Hashtbl.find_opt t.dir line with
  | None -> ()
  | Some e ->
    Bitset.remove e.sharers core;
    if e.owner = core then e.owner <- -1;
    if e.owner = -1 && Bitset.is_empty e.sharers then Hashtbl.remove t.dir line

(* L2 inclusion for the directory backend: a dirty L2 victim occupies its
   own home bank for the writeback instead of the (nonexistent) bus. *)
let dir_l2_fill t line =
  match Cache.find t.l2 line with
  | Some _ -> Cache.touch t.l2 line
  | None -> (
    match Cache.insert t.l2 line Cache.S with
    | None -> ()
    | Some (victim, vstate) ->
      if vstate = Cache.M || vstate = Cache.O then
        let h = home_of t victim in
        t.home_free.(h) <- t.home_free.(h) + t.cfg.dir_occupancy)

(* Fill into an L1D under the directory: the victim's home is notified
   (precise sharer tracking), and a dirty victim writes back to L2. *)
let dir_fill t ~core line st =
  match Cache.insert t.l1d.(core) line st with
  | None -> ()
  | Some (victim, vstate) ->
    dir_forget t ~core victim;
    if vstate = Cache.M || vstate = Cache.O then begin
      t.per_core.(core).writebacks <- t.per_core.(core).writebacks + 1;
      let h = home_of t victim in
      t.home_free.(h) <- t.home_free.(h) + t.cfg.dir_occupancy;
      if Cache.find t.l2 victim = None then ignore (Cache.insert t.l2 victim Cache.S)
      else Cache.touch t.l2 victim
    end

(* Invalidate every remote sharer listed in [e]; returns whether any
   remote copy existed (pricing the invalidation round). The stale-sharer
   backdoor skips the highest-numbered remote sharer once — the injected
   protocol bug the sanitizer must catch. *)
let dir_invalidate_sharers t ~core e line =
  let st = t.per_core.(core) in
  let skip =
    if t.stale_sharer_bug then begin
      let victim = ref (-1) in
      Bitset.iter (fun c -> if c <> core then victim := c) e.sharers ~n:t.n_cores;
      if !victim >= 0 then t.stale_sharer_bug <- false;
      !victim
    end
    else -1
  in
  let any = ref false in
  Bitset.iter
    (fun c ->
      if c <> core then begin
        any := true;
        if c <> skip then begin
          st.dir_invalidations <- st.dir_invalidations + 1;
          Cache.invalidate t.l1d.(c) line;
          Bitset.remove e.sharers c;
          if e.owner = c then e.owner <- -1
        end
      end)
    e.sharers ~n:t.n_cores;
  !any

(* Fetch a line from L2/memory at the home (no cached owner). *)
let dir_fetch t ~core line =
  let st = t.per_core.(core) in
  match Cache.find t.l2 line with
  | Some _ ->
    Cache.touch t.l2 line;
    t.cfg.lat_l2
  | None ->
    st.l2_misses <- st.l2_misses + 1;
    dir_l2_fill t line;
    t.cfg.lat_mem

let dir_access_data t ~now ~core ~write addr =
  let st = t.per_core.(core) in
  st.accesses <- st.accesses + 1;
  let line = dline t addr in
  let l1 = t.l1d.(core) in
  match Cache.find l1 line with
  | Some _ when not write ->
    Cache.touch l1 line;
    now + t.cfg.lat_l1
  | Some (Cache.M | Cache.E) ->
    Cache.touch l1 line;
    Cache.set_state l1 line Cache.M;
    now + t.cfg.lat_l1
  | Some (Cache.O | Cache.S) ->
    (* Write hit on a shared line: upgrade through the home — request
       message, directory lookup, invalidations to the actual sharers
       (no broadcast). *)
    st.upgrades <- st.upgrades + 1;
    let home = home_of t line in
    let start = acquire_home t ~now ~core home in
    st.dir_lookups <- st.dir_lookups + 1;
    let e = dir_entry t line in
    let had_remote = dir_invalidate_sharers t ~core e line in
    e.owner <- core;
    Bitset.add e.sharers core;
    Cache.touch l1 line;
    Cache.set_state l1 line Cache.M;
    start + t.cfg.dir_lat_msg + t.cfg.dir_lat_lookup
    + (if had_remote then t.cfg.dir_lat_inv else 0)
  | Some Cache.I | None ->
    st.l1d_misses <- st.l1d_misses + 1;
    let home = home_of t line in
    let start = acquire_home t ~now ~core home in
    st.dir_lookups <- st.dir_lookups + 1;
    let e = dir_entry t line in
    let remote_owner = if e.owner >= 0 && e.owner <> core then e.owner else -1 in
    let duration =
      if write then begin
        let base =
          if remote_owner >= 0 then begin
            (* 3-hop: home forwards the RdX to the owner, which sends the
               line cache-to-cache and invalidates itself. *)
            st.dir_indirections <- st.dir_indirections + 1;
            st.c2c_transfers <- st.c2c_transfers + 1;
            st.dir_invalidations <- st.dir_invalidations + 1;
            Cache.invalidate t.l1d.(remote_owner) line;
            Bitset.remove e.sharers remote_owner;
            e.owner <- -1;
            t.cfg.dir_lat_fwd + t.cfg.lat_c2c
          end
          else begin
            let had_remote = dir_invalidate_sharers t ~core e line in
            dir_fetch t ~core line
            + if had_remote then t.cfg.dir_lat_inv else 0
          end
        in
        e.owner <- core;
        Bitset.add e.sharers core;
        dir_fill t ~core line Cache.M;
        t.cfg.dir_lat_msg + t.cfg.dir_lat_lookup + base
      end
      else begin
        let base =
          if remote_owner >= 0 then begin
            (* 3-hop read: owner supplies the line and downgrades to S
               (dirty data refreshes L2 on the way). *)
            st.dir_indirections <- st.dir_indirections + 1;
            st.c2c_transfers <- st.c2c_transfers + 1;
            (match Cache.find t.l1d.(remote_owner) line with
            | Some Cache.M ->
              t.per_core.(remote_owner).writebacks <-
                t.per_core.(remote_owner).writebacks + 1;
              if Cache.find t.l2 line = None then
                ignore (Cache.insert t.l2 line Cache.S)
              else Cache.touch t.l2 line
            | _ -> ());
            Cache.set_state t.l1d.(remote_owner) line Cache.S;
            e.owner <- -1;
            t.cfg.dir_lat_fwd + t.cfg.lat_c2c
          end
          else dir_fetch t ~core line
        in
        let my_state =
          if e.owner = -1 && Bitset.is_empty e.sharers then Cache.E else Cache.S
        in
        if my_state = Cache.E then e.owner <- core;
        Bitset.add e.sharers core;
        dir_fill t ~core line my_state;
        t.cfg.dir_lat_msg + t.cfg.dir_lat_lookup + base
      end
    in
    start + duration

(* Instruction lines are per-core private (disjoint address spaces), so
   the directory keeps no entry for them: an ifetch miss is a plain
   point-to-point fetch through the line's home bank. *)
let dir_access_inst t ~now ~core addr =
  let st = t.per_core.(core) in
  let line = iline t core addr in
  let l1 = t.l1i.(core) in
  match Cache.find l1 line with
  | Some _ ->
    Cache.touch l1 line;
    now + t.cfg.lat_l1
  | None ->
    st.l1i_misses <- st.l1i_misses + 1;
    let start = acquire_home t ~now ~core (home_of t line) in
    let duration =
      match Cache.find t.l2 line with
      | Some _ ->
        Cache.touch t.l2 line;
        t.cfg.lat_l2
      | None ->
        st.l2_misses <- st.l2_misses + 1;
        dir_l2_fill t line;
        t.cfg.lat_mem
    in
    (match Cache.insert l1 line Cache.S with
    | None | Some _ -> () (* code is clean; victims need no writeback *));
    start + t.cfg.dir_lat_msg + duration

(* --- Common surface --------------------------------------------------------- *)

let access t ~now ~core kind addr =
  let completion =
    match (t.cfg.protocol, kind) with
    | Snoop, Ifetch -> access_inst t ~now ~core addr
    | Snoop, Dload -> access_data t ~now ~core ~write:false addr
    | Snoop, Dstore -> access_data t ~now ~core ~write:true addr
    | Directory, Ifetch -> dir_access_inst t ~now ~core addr
    | Directory, Dload -> dir_access_data t ~now ~core ~write:false addr
    | Directory, Dstore -> dir_access_data t ~now ~core ~write:true addr
  in
  (match t.monitor with None -> () | Some f -> f ~core ~completion kind addr);
  completion

let l1d_line_states t ~addr =
  let line = dline t addr in
  let states = ref [] in
  for c = t.n_cores - 1 downto 0 do
    match Cache.find t.l1d.(c) line with
    | Some st -> states := (c, st) :: !states
    | None -> ()
  done;
  (line, !states)

let dir_sharers t ~addr =
  match Hashtbl.find_opt t.dir (dline t addr) with
  | None -> []
  | Some e -> Bitset.to_list e.sharers ~n:t.n_cores

let dir_owner t ~addr =
  match Hashtbl.find_opt t.dir (dline t addr) with
  | None -> None
  | Some e -> if e.owner >= 0 then Some e.owner else None

let test_inject_stale_sharer t = t.stale_sharer_bug <- true

let would_hit t ~core kind addr =
  match kind with
  | Ifetch -> Cache.find t.l1i.(core) (iline t core addr) <> None
  | Dload -> Cache.find t.l1d.(core) (dline t addr) <> None
  | Dstore -> (
    match Cache.find t.l1d.(core) (dline t addr) with
    | Some (Cache.M | Cache.E) -> true
    | Some (Cache.O | Cache.S | Cache.I) | None -> false)

(* Directory bookkeeping must mirror the caches exactly: every valid L1D
   copy is a recorded sharer, every recorded sharer holds a valid copy,
   and M/E copies are the recorded owner. *)
let check_directory t =
  let violation = ref None in
  let fail fmt = Printf.ksprintf (fun msg -> if !violation = None then violation := Some msg) fmt in
  for c = 0 to t.n_cores - 1 do
    List.iter
      (fun (line, st) ->
        match Hashtbl.find_opt t.dir line with
        | None -> fail "line %d: core %d holds a copy the directory forgot" line c
        | Some e ->
          if not (Bitset.mem e.sharers c) then
            fail "line %d: core %d holds a copy but is not a recorded sharer" line c
          else if (st = Cache.M || st = Cache.E) && e.owner <> c then
            fail "line %d: core %d holds %s but the directory owner is %d" line c
              (Format.asprintf "%a" Cache.pp_state st)
              e.owner)
      (Cache.valid_lines t.l1d.(c))
  done;
  Hashtbl.iter
    (fun line e ->
      Bitset.iter
        (fun c ->
          if Cache.find t.l1d.(c) line = None then
            fail "line %d: directory lists core %d as sharer but its cache does not hold it"
              line c)
        e.sharers ~n:t.n_cores)
    t.dir;
  !violation

let check_invariants t =
  (* Gather, per line, the multiset of L1D states across cores. *)
  let lines : (int, Cache.state list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun cache ->
      List.iter
        (fun (line, st) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt lines line) in
          Hashtbl.replace lines line (st :: cur))
        (Cache.valid_lines cache))
    t.l1d;
  let violation = ref None in
  Hashtbl.iter
    (fun line states ->
      if !violation = None then begin
        let count st = List.length (List.filter (fun s -> s = st) states) in
        let m = count Cache.M and e = count Cache.E and o = count Cache.O in
        let total = List.length states in
        if m + e > 1 then
          violation := Some (Printf.sprintf "line %d: %d M/E copies" line (m + e))
        else if (m = 1 || e = 1) && total > 1 then
          violation :=
            Some (Printf.sprintf "line %d: M/E copy coexists with %d others" line (total - 1))
        else if o > 1 then
          violation := Some (Printf.sprintf "line %d: %d owners" line o)
      end)
    lines;
  let violation =
    match !violation with
    | Some _ as v -> v
    | None -> if t.cfg.protocol = Directory then check_directory t else None
  in
  match violation with None -> Ok "coherent" | Some msg -> Error msg
