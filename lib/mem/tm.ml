type tx = {
  mutable active : bool;
  reads : (int, unit) Hashtbl.t;
  writes : (int, int) Hashtbl.t;  (** address -> last buffered value *)
  write_order : int Voltron_util.Vec.t;  (** addresses in first-write order *)
}

(* Runtime sanitizer hooks: one narrow callback per TM-visible event. All
   passive — the sanitizer mirrors the write buffers and shadow memory from
   these, it never mutates the TM. [tx] on read/write says whether the core
   was inside a transaction (buffered) at that access. *)
type monitor = {
  m_read : core:int -> addr:int -> value:int -> tx:bool -> unit;
  m_write : core:int -> addr:int -> value:int -> tx:bool -> unit;
  m_begin : core:int -> unit;
  m_commit : core:int -> unit;  (** after the buffer landed in memory *)
  m_abort : core:int -> unit;  (** after the buffer was discarded *)
}

type t = {
  mem : Memory.t;
  txs : tx array;
  mutable monitor : monitor option;
  (* Test-only sabotage: when armed, the next abort leaks its first
     buffered store into memory before discarding the buffer — a broken
     rollback for the sanitizer's TM oracle to catch. *)
  mutable leak_next_abort : bool;
}

let fresh_tx () =
  {
    active = false;
    reads = Hashtbl.create 32;
    writes = Hashtbl.create 32;
    write_order = Voltron_util.Vec.create ();
  }

let create mem ~n_cores =
  {
    mem;
    txs = Array.init n_cores (fun _ -> fresh_tx ());
    monitor = None;
    leak_next_abort = false;
  }

let set_monitor t m = t.monitor <- Some m

let test_leak_next_abort t = t.leak_next_abort <- true

let in_tx t ~core = t.txs.(core).active

let tx_begin t ~core =
  let tx = t.txs.(core) in
  if tx.active then invalid_arg "Tm.tx_begin: transaction already active";
  tx.active <- true;
  Hashtbl.reset tx.reads;
  Hashtbl.reset tx.writes;
  Voltron_util.Vec.clear tx.write_order;
  match t.monitor with None -> () | Some m -> m.m_begin ~core

let read t ~core addr =
  let tx = t.txs.(core) in
  let in_tx = tx.active in
  let v =
    if not in_tx then Memory.read t.mem addr
    else begin
      Hashtbl.replace tx.reads addr ();
      match Hashtbl.find_opt tx.writes addr with
      | Some v -> v
      | None -> Memory.read t.mem addr
    end
  in
  (match t.monitor with
  | None -> ()
  | Some m -> m.m_read ~core ~addr ~value:v ~tx:in_tx);
  v

let write t ~core addr v =
  let tx = t.txs.(core) in
  let in_tx = tx.active in
  if not in_tx then Memory.write t.mem addr v
  else begin
    (* Validate the address eagerly so an out-of-bounds store faults inside
       the transaction, like a real store would. *)
    if addr < 0 || addr >= Memory.size t.mem then
      invalid_arg (Printf.sprintf "Tm.write: address %d out of bounds" addr);
    if not (Hashtbl.mem tx.writes addr) then
      Voltron_util.Vec.push tx.write_order addr;
    Hashtbl.replace tx.writes addr v
  end;
  match t.monitor with
  | None -> ()
  | Some m -> m.m_write ~core ~addr ~value:v ~tx:in_tx

let clear_tx t ~core =
  let tx = t.txs.(core) in
  tx.active <- false;
  Hashtbl.reset tx.reads;
  Hashtbl.reset tx.writes;
  Voltron_util.Vec.clear tx.write_order

let abort t ~core =
  let tx = t.txs.(core) in
  if t.leak_next_abort && tx.active && Voltron_util.Vec.length tx.write_order > 0
  then begin
    (* Armed sabotage: a rollback that forgets to discard one buffered
       store. The write bypasses the monitor on purpose — a real protocol
       bug would not announce itself either. *)
    t.leak_next_abort <- false;
    let addr = Voltron_util.Vec.get tx.write_order 0 in
    Memory.write t.mem addr (Hashtbl.find tx.writes addr)
  end;
  clear_tx t ~core;
  match t.monitor with None -> () | Some m -> m.m_abort ~core

let read_set t ~core =
  Hashtbl.fold (fun addr () acc -> addr :: acc) t.txs.(core).reads []
  |> List.sort compare

let write_set t ~core =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.txs.(core).writes []
  |> List.sort compare

let commit_one t ~core =
  let tx = t.txs.(core) in
  Voltron_util.Vec.iter
    (fun addr -> Memory.write t.mem addr (Hashtbl.find tx.writes addr))
    tx.write_order;
  clear_tx t ~core;
  match t.monitor with None -> () | Some m -> m.m_commit ~core

let commit_round t ~cores =
  let committed_writes : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec loop = function
    | [] -> `All_committed
    | core :: rest ->
      let tx = t.txs.(core) in
      if not tx.active then
        invalid_arg (Printf.sprintf "Tm.commit_round: core %d not in a transaction" core);
      let conflict =
        Hashtbl.fold
          (fun addr () acc -> acc || Hashtbl.mem committed_writes addr)
          tx.reads false
      in
      if conflict then begin
        List.iter (fun c -> abort t ~core:c) (core :: rest);
        `Conflict_at core
      end
      else begin
        Hashtbl.iter (fun addr _ -> Hashtbl.replace committed_writes addr ()) tx.writes;
        commit_one t ~core;
        loop rest
      end
  in
  loop cores
