(** Low-cost transactional memory for statistical DOALL loops (paper §3,
    and Lieberman et al. tech report [14]).

    A DOALL loop's iterations are split into chunks, one per core; each
    chunk runs as a transaction. During a transaction the core's stores are
    buffered (memory is untouched) and its loads are recorded; loads see the
    core's own buffered stores first, then pre-round memory. Chunks commit
    in iteration order (= core order). Core [i]'s transaction conflicts if
    it read an address written by any logically-earlier core [j < i] in the
    same round — core [i] would have needed [j]'s value. The machine then
    rolls the violating cores back (register rollback is the compiler's
    snapshot; memory rollback is simply discarding the write buffer) and
    re-executes their chunks serially. *)

type t

(** Runtime sanitizer hooks — one narrow callback per TM-visible event,
    all passive (the sanitizer mirrors buffers and shadow memory from
    them; it never mutates the TM). [tx] on read/write reports whether the
    access was inside a transaction (i.e. buffered). Every architectural
    memory access in the machine goes through {!read}/{!write}, so these
    two callbacks double as the machine-wide load/store event stream. *)
type monitor = {
  m_read : core:int -> addr:int -> value:int -> tx:bool -> unit;
  m_write : core:int -> addr:int -> value:int -> tx:bool -> unit;
  m_begin : core:int -> unit;
  m_commit : core:int -> unit;  (** after the buffer landed in memory *)
  m_abort : core:int -> unit;  (** after the buffer was discarded *)
}

val create : Memory.t -> n_cores:int -> t

val set_monitor : t -> monitor -> unit

val test_leak_next_abort : t -> unit
(** Arm a one-shot sabotage: the next {!abort} of a transaction with a
    non-empty write buffer silently writes its first buffered store to
    memory before discarding the buffer — a broken rollback, invisible to
    the recovery machinery, for the sanitizer's TM oracle to catch.
    Test-only. *)

val in_tx : t -> core:int -> bool

val tx_begin : t -> core:int -> unit
(** Raises [Invalid_argument] if the core is already in a transaction. *)

val read : t -> core:int -> int -> int
(** Transactional read when the core is in a transaction (recorded in the
    read set, sees own buffered writes), plain memory read otherwise. *)

val write : t -> core:int -> int -> int -> unit
(** Buffered inside a transaction, direct to memory otherwise. *)

val abort : t -> core:int -> unit
(** Discard the core's buffered writes and read set. *)

val read_set : t -> core:int -> int list
val write_set : t -> core:int -> int list

val commit_round : t -> cores:int list -> [ `All_committed | `Conflict_at of int ]
(** Commit the listed cores' transactions in list order (= logical
    iteration order). On the first core whose read set intersects the
    writes already committed this round by earlier listed cores, stop:
    earlier cores stay committed, the conflicting core and all later listed
    cores are aborted, and [`Conflict_at core] identifies the first
    violator (the machine re-runs from there serially). *)
