type state = M | O | E | S | I

(* Each set is a small array of ways plus a recency stamp per way: the LRU
   order is "descending age", a promote is one store, and victim selection
   is a linear min scan — O(ways) worst case instead of the O(ways^2)
   list-splice representation this replaces, with the identical order
   (ages are all distinct: initial stamps are strictly decreasing by way
   index, replicating the original way-0-first order, and every promote
   uses a fresh tick). *)
type way = { mutable line : int; mutable state : state }

type set = {
  ways_arr : way array;
  age : int array;  (** recency stamp per way; larger = more recent *)
  mutable tick : int;  (** last stamp handed out *)
}

type t = { n_sets : int; n_ways : int; sets_arr : set array }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~sets ~ways =
  if not (is_pow2 sets) then invalid_arg "Cache.create: sets must be a power of two";
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  {
    n_sets = sets;
    n_ways = ways;
    sets_arr =
      Array.init sets (fun _ ->
          {
            ways_arr = Array.init ways (fun _ -> { line = -1; state = I });
            age = Array.init ways (fun i -> ways - 1 - i);
            tick = ways - 1;
          });
  }

let sets t = t.n_sets
let ways t = t.n_ways

let set_of t line = t.sets_arr.(line land (t.n_sets - 1))

let find_way set line =
  let rec loop i =
    if i >= Array.length set.ways_arr then None
    else
      let w = set.ways_arr.(i) in
      if w.state <> I && w.line = line then Some i else loop (i + 1)
  in
  loop 0

let promote set i =
  set.tick <- set.tick + 1;
  set.age.(i) <- set.tick

let find t line =
  let set = set_of t line in
  match find_way set line with
  | None -> None
  | Some i -> Some set.ways_arr.(i).state

let touch t line =
  let set = set_of t line in
  match find_way set line with None -> () | Some i -> promote set i

let set_state t line st =
  let set = set_of t line in
  match find_way set line with
  | None -> raise Not_found
  | Some i -> set.ways_arr.(i).state <- st

let insert t line st =
  let set = set_of t line in
  (match find_way set line with
  | Some _ -> invalid_arg "Cache.insert: line already present"
  | None -> ());
  (* Prefer an invalid way; otherwise evict the minimum-age (LRU) way. *)
  let victim_way =
    let n = Array.length set.ways_arr in
    let rec invalid_loop i =
      if i >= n then None
      else if set.ways_arr.(i).state = I then Some i
      else invalid_loop (i + 1)
    in
    match invalid_loop 0 with
    | Some i -> i
    | None ->
      let best = ref 0 in
      for i = 1 to n - 1 do
        if set.age.(i) < set.age.(!best) then best := i
      done;
      !best
  in
  let w = set.ways_arr.(victim_way) in
  let victim = if w.state = I then None else Some (w.line, w.state) in
  w.line <- line;
  w.state <- st;
  promote set victim_way;
  victim

let invalidate t line =
  let set = set_of t line in
  match find_way set line with
  | None -> ()
  | Some i -> set.ways_arr.(i).state <- I

let valid_lines t =
  Array.to_list t.sets_arr
  |> List.concat_map (fun set ->
         Array.to_list set.ways_arr
         |> List.filter_map (fun w ->
                if w.state = I then None else Some (w.line, w.state)))

let pp_state ppf st =
  Format.pp_print_string ppf
    (match st with M -> "M" | O -> "O" | E -> "E" | S -> "S" | I -> "I")
