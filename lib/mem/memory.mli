(** Flat word-addressed data memory.

    The simulator separates *function* from *timing*: architectural data
    always lives here (so every mode of execution can be checked against the
    reference interpreter's memory image), while the cache hierarchy in
    {!Coherence} models only tags, states and latencies.

    With an {!Voltron_fault.Ecc} model attached, words carry a (modelled)
    SEC code: {!corrupt} flips a stored bit, {!read} detects and corrects
    corrupted words on demand, {!write} masks a pending flip, and {!scrub}
    corrects any leftovers — so a faulty run's final image equals the
    fault-free one. Without an attached model, {!corrupt} is a no-op and
    the fast path is unchanged. *)

type t

val create : int -> t
(** [create n] is an [n]-word memory initialised to zero. *)

val size : t -> int
val read : t -> int -> int
val write : t -> int -> int -> unit
(** Out-of-bounds accesses raise [Invalid_argument] — the simulator treats
    them as a (simulated) program crash. *)

val peek : t -> int -> int
(** Architectural value of a word with {e no} side effect: what {!read}
    would return, but without consuming a pending ECC correction, bumping
    counters or charging latency. The runtime sanitizer's view of memory. *)

val test_tamper : t -> int -> int -> unit
(** [test_tamper t addr v] overwrites the stored word {e without} noting
    anything in the ECC model — a corruption past the code's detection
    capability (multi-bit upset). Invisible to the recovery machinery by
    construction; only the sanitizer's shadow memory can catch it.
    Test-only: real injection goes through {!corrupt}. *)

val attach_ecc : t -> Voltron_fault.Ecc.t -> unit
(** Enable the ECC model; required before {!corrupt} has any effect. *)

val corrupt : t -> int -> flip:(int -> int) -> unit
(** Fault-injection entry point: apply [flip] to the stored word,
    remembering the golden value in the attached ECC model. *)

val scrub : t -> unit
(** Correct every still-corrupted word (end-of-run ECC scrub). *)

val load_init : t -> (int * int) list -> unit
val snapshot : t -> int array
val restore : t -> int array -> unit
val equal : t -> t -> bool

val checksum : t -> int
(** Order-sensitive FNV-style hash of the full contents; the oracle value
    compared across execution strategies. *)

val checksum_prefix : t -> int -> int
(** Hash of the first [n] words only — used to compare runs whose memories
    differ in compiler-scratch headroom beyond the program's arrays. *)
