(* Tests for the network layer: mesh geometry and XY routing, direct-mode
   latches and broadcast timing, queue-mode delivery latency, sender
   matching, FIFO order, capacity backpressure, and spawn messages. *)

module Mesh = Voltron_net.Mesh
module Net = Voltron_net.Operand_network
module Inst = Voltron_isa.Inst

let mesh4 = Mesh.create 4
let mesh2 = Mesh.create 2

let test_mesh_geometry () =
  Alcotest.(check (pair int int)) "4-core is 2x2" (2, 2)
    (Mesh.columns mesh4, Mesh.rows mesh4);
  Alcotest.(check (pair int int)) "core 3 at (1,1)" (1, 1) (Mesh.coords mesh4 3);
  Alcotest.(check int) "hops 0-3" 2 (Mesh.hops mesh4 0 3);
  Alcotest.(check int) "hops 0-1" 1 (Mesh.hops mesh4 0 1);
  Alcotest.(check int) "diameter" 2 (Mesh.max_hops mesh4);
  Alcotest.(check int) "2-core diameter" 1 (Mesh.max_hops mesh2)

let test_mesh_neighbours () =
  Alcotest.(check (option int)) "0 east" (Some 1) (Mesh.neighbour mesh4 0 Inst.East);
  Alcotest.(check (option int)) "0 south" (Some 2) (Mesh.neighbour mesh4 0 Inst.South);
  Alcotest.(check (option int)) "0 west" None (Mesh.neighbour mesh4 0 Inst.West);
  Alcotest.(check (option int)) "3 north" (Some 1) (Mesh.neighbour mesh4 3 Inst.North)

let test_mesh_route () =
  let path = Mesh.path_cores mesh4 ~src:0 ~dst:3 in
  Alcotest.(check int) "path length" 3 (List.length path);
  Alcotest.(check bool) "starts at src" true (List.hd path = 0);
  Alcotest.(check bool) "ends at dst" true (List.nth path 2 = 3);
  Alcotest.(check (list int)) "self route empty" [ 0 ]
    (Mesh.path_cores mesh4 ~src:0 ~dst:0)

let mk_net mesh = Net.create mesh ~receive_capacity:4

let test_direct_put_get () =
  let n = mk_net mesh2 in
  (match Net.put n ~now:5 ~src_core:0 Inst.East 42 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Net.put_error_to_string ~src_core:0 e));
  Alcotest.(check (option int)) "same-cycle get" (Some 42)
    (Net.get n ~now:5 ~core:1 Inst.West);
  Alcotest.(check (option int)) "latch drained" None
    (Net.get n ~now:5 ~core:1 Inst.West)

let test_direct_put_off_mesh () =
  let n = mk_net mesh2 in
  match Net.put n ~now:0 ~src_core:0 Inst.West 1 with
  | Error Net.Off_mesh -> ()
  | Error (Net.Latch_full _) -> Alcotest.fail "wrong error: latch full"
  | Ok () -> Alcotest.fail "put off the mesh must fail"

let test_direct_stale_get_detected () =
  let n = mk_net mesh2 in
  (match Net.put n ~now:1 ~src_core:0 Inst.East 7 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Net.put_error_to_string ~src_core:0 e));
  Alcotest.(check bool) "late get is a lock-step violation" true
    (try
       ignore (Net.get n ~now:3 ~core:1 Inst.West);
       false
     with Failure _ -> true)

let test_bcast_arrival_times () =
  let n = mk_net mesh4 in
  Net.bcast n ~now:10 ~src_core:0 99;
  (* Core 1 is 1 hop away: visible at 11, not at 10. *)
  Alcotest.(check (option int)) "too early" None (Net.getb n ~now:10 ~core:1);
  Alcotest.(check (option int)) "1 hop" (Some 99) (Net.getb n ~now:11 ~core:1);
  (* Core 3 is 2 hops away. *)
  Alcotest.(check bool) "2 hops not at 11" true (not (Net.getb_ready n ~now:11 ~core:3));
  Alcotest.(check (option int)) "2 hops at 12" (Some 99) (Net.getb n ~now:12 ~core:3);
  (* Consuming is per-core: core 1 cannot getb twice. *)
  Alcotest.(check (option int)) "consumed" None (Net.getb n ~now:13 ~core:1)

let test_queue_latency () =
  let n = mk_net mesh4 in
  (match Net.send n ~now:0 ~src:0 ~dst:3 (Net.Value 5) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Net.send_error_to_string e));
  (* 1 cycle into the queue + 2 hops: ready at 3, so recv at 2 stalls. *)
  Alcotest.(check bool) "not ready at 2" false (Net.recv_ready n ~now:2 ~core:3 ~sender:0);
  Alcotest.(check (option int)) "ready at 3" (Some 5) (Net.recv n ~now:3 ~core:3 ~sender:0)

let test_queue_sender_matching () =
  let n = mk_net mesh4 in
  ignore (Net.send n ~now:0 ~src:1 ~dst:0 (Net.Value 11));
  ignore (Net.send n ~now:0 ~src:2 ~dst:0 (Net.Value 22));
  Alcotest.(check (option int)) "matches sender 2" (Some 22)
    (Net.recv n ~now:10 ~core:0 ~sender:2);
  Alcotest.(check (option int)) "matches sender 1" (Some 11)
    (Net.recv n ~now:10 ~core:0 ~sender:1)

let test_queue_fifo_per_pair () =
  let n = mk_net mesh4 in
  ignore (Net.send n ~now:0 ~src:0 ~dst:1 (Net.Value 1));
  ignore (Net.send n ~now:1 ~src:0 ~dst:1 (Net.Value 2));
  ignore (Net.send n ~now:2 ~src:0 ~dst:1 (Net.Value 3));
  (* List literals evaluate right-to-left; force receive order with init. *)
  let received = List.init 4 (fun _ -> Net.recv n ~now:50 ~core:1 ~sender:0) in
  Alcotest.(check (list (option int))) "fifo order"
    [ Some 1; Some 2; Some 3; None ]
    received

let test_queue_capacity () =
  let n = mk_net mesh4 in
  for i = 1 to 4 do
    match Net.send n ~now:i ~src:0 ~dst:1 (Net.Value i) with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Net.send_error_to_string e)
  done;
  (match Net.send n ~now:5 ~src:0 ~dst:1 (Net.Value 5) with
  | Error Net.Channel_full -> ()
  | Error (Net.Bad_destination _) -> Alcotest.fail "wrong error: bad destination"
  | Ok () -> Alcotest.fail "channel over capacity");
  (* Capacity is per (sender, receiver) channel: another sender still gets
     through to the same receiver (a shared queue would deadlock
     rate-mismatched threads). *)
  (match Net.send n ~now:5 ~src:3 ~dst:1 (Net.Value 99) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Net.send_error_to_string e));
  (* Draining one frees a slot. *)
  ignore (Net.recv n ~now:50 ~core:1 ~sender:0);
  match Net.send n ~now:51 ~src:0 ~dst:1 (Net.Value 5) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Net.send_error_to_string e)

let test_spawn_start_message () =
  let n = mk_net mesh2 in
  ignore (Net.send n ~now:0 ~src:0 ~dst:1 (Net.Start 17));
  ignore (Net.send n ~now:0 ~src:0 ~dst:1 (Net.Value 5));
  (* take_start only sees Start messages; recv only Values. *)
  Alcotest.(check (option int)) "start" (Some 17) (Net.take_start n ~now:10 ~core:1);
  Alcotest.(check (option int)) "no more starts" None (Net.take_start n ~now:10 ~core:1);
  Alcotest.(check (option int)) "value intact" (Some 5)
    (Net.recv n ~now:10 ~core:1 ~sender:0)

let test_idle () =
  let n = mk_net mesh2 in
  Alcotest.(check bool) "initially idle" true (Net.idle n);
  ignore (Net.send n ~now:0 ~src:0 ~dst:1 (Net.Value 1));
  Alcotest.(check bool) "busy with message" false (Net.idle n);
  ignore (Net.recv n ~now:10 ~core:1 ~sender:0);
  Alcotest.(check bool) "idle after drain" true (Net.idle n)

(* --- Resilience: retry/backoff protocol ----------------------------------- *)

module Fault = Voltron_fault.Fault

let drain_service n ~upto =
  for now = 0 to upto do
    Net.service n ~now
  done

let test_defer_then_service () =
  (* Overflow path: a 5th message on a full channel is deferred (entry NACK)
     and retransmitted by [service] on the backoff schedule — it arrives
     after the queued four, in order, with the NACK and retry counted. *)
  let n = mk_net mesh2 in
  for i = 1 to 4 do
    ignore (Net.send n ~now:0 ~src:0 ~dst:1 (Net.Value i))
  done;
  (match Net.send n ~now:0 ~src:0 ~dst:1 (Net.Value 5) with
  | Error Net.Channel_full -> Net.defer n ~now:0 ~src:0 ~dst:1 (Net.Value 5)
  | Error (Net.Bad_destination _) | Ok () ->
    Alcotest.fail "expected channel-full overflow");
  drain_service n ~upto:100;
  let received = List.init 5 (fun _ -> Net.recv n ~now:100 ~core:1 ~sender:0) in
  Alcotest.(check (list (option int)))
    "deferred message arrives last, order kept"
    [ Some 1; Some 2; Some 3; Some 4; Some 5 ]
    received;
  let s = Net.stats n in
  Alcotest.(check int) "one overflow nack" 1 s.Net.nacks;
  Alcotest.(check bool) "retransmission happened" true (s.Net.retries >= 1)

let test_drop_retry_bounded () =
  (* drop_rate 1.0 with max_retries 2: the message is lost exactly twice,
     then the third transmission is forced clean — bounded recovery even at
     rate 1.0. *)
  let cfg =
    { Fault.disabled with Fault.drop_rate = 1.0; retry_timeout = 2; max_retries = 2 }
  in
  let f = Fault.create cfg in
  let n = Net.create ~faults:f mesh2 ~receive_capacity:4 in
  (match Net.send n ~now:0 ~src:0 ~dst:1 (Net.Value 7) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Net.send_error_to_string e));
  Alcotest.(check (option int)) "nothing deliverable while lost" None
    (Net.recv n ~now:1 ~core:1 ~sender:0);
  drain_service n ~upto:30;
  Alcotest.(check (option int)) "delivered after retries" (Some 7)
    (Net.recv n ~now:30 ~core:1 ~sender:0);
  Alcotest.(check int) "dropped twice" 2 (Fault.counters f).Fault.msgs_dropped;
  Alcotest.(check int) "two retransmissions" 2 (Net.stats n).Net.retries

let test_corrupt_nack_retry () =
  (* corrupt_rate 1.0 with max_retries 1: parity fails on arrival, the NACK
     triggers one backoff'd resend, and the clean retry carries the
     original payload. *)
  let cfg =
    { Fault.disabled with Fault.corrupt_rate = 1.0; retry_timeout = 2; max_retries = 1 }
  in
  let f = Fault.create cfg in
  let n = Net.create ~faults:f mesh2 ~receive_capacity:4 in
  ignore (Net.send n ~now:0 ~src:0 ~dst:1 (Net.Value 42));
  drain_service n ~upto:30;
  Alcotest.(check (option int)) "payload intact after resend" (Some 42)
    (Net.recv n ~now:30 ~core:1 ~sender:0);
  Alcotest.(check int) "corrupted once" 1 (Fault.counters f).Fault.msgs_corrupted;
  let s = Net.stats n in
  Alcotest.(check int) "parity nack counted" 1 s.Net.nacks;
  Alcotest.(check int) "one retransmission" 1 s.Net.retries

let test_head_of_line_order () =
  (* A retried message blocks younger traffic on its channel: the younger
     clean message must not overtake, or queue-mode FIFO semantics break. *)
  let n = mk_net mesh2 in
  Net.defer n ~now:0 ~src:0 ~dst:1 (Net.Value 1);
  (match Net.send n ~now:0 ~src:0 ~dst:1 (Net.Value 2) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Net.send_error_to_string e));
  Alcotest.(check bool) "younger message held behind the deferred one" false
    (Net.recv_ready n ~now:10 ~core:1 ~sender:0);
  drain_service n ~upto:60;
  Alcotest.(check (option int)) "older delivered first" (Some 1)
    (Net.recv n ~now:60 ~core:1 ~sender:0);
  Alcotest.(check (option int)) "then the younger" (Some 2)
    (Net.recv n ~now:60 ~core:1 ~sender:0)

(* Property: messages between a random pair sequence are delivered exactly
   once and in per-pair FIFO order. *)
let test_exactly_once =
  QCheck.Test.make ~name:"exactly-once, per-pair fifo delivery" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 40) (pair (int_bound 3) (int_bound 3)))
    (fun pairs ->
      let n = Net.create mesh4 ~receive_capacity:1000 in
      let sent = Hashtbl.create 16 in
      List.iteri
        (fun i (src, dst) ->
          if src <> dst then begin
            (match Net.send n ~now:i ~src ~dst (Net.Value i) with
            | Ok () -> ()
            | Error _ -> ());
            Hashtbl.replace sent (src, dst)
              (i :: Option.value ~default:[] (Hashtbl.find_opt sent (src, dst)))
          end)
        pairs;
      let now = List.length pairs + 10 in
      Hashtbl.fold
        (fun (src, dst) payloads acc ->
          acc
          &&
          let expected = List.rev payloads in
          let received =
            List.map (fun _ -> Net.recv n ~now ~core:dst ~sender:src) expected
          in
          received = List.map (fun v -> Some v) expected
          && Net.recv n ~now ~core:dst ~sender:src = None)
        sent true)

let () =
  Alcotest.run "net"
    [
      ( "mesh",
        [
          Alcotest.test_case "geometry" `Quick test_mesh_geometry;
          Alcotest.test_case "neighbours" `Quick test_mesh_neighbours;
          Alcotest.test_case "routing" `Quick test_mesh_route;
        ] );
      ( "direct",
        [
          Alcotest.test_case "put/get" `Quick test_direct_put_get;
          Alcotest.test_case "off-mesh put" `Quick test_direct_put_off_mesh;
          Alcotest.test_case "stale get" `Quick test_direct_stale_get_detected;
          Alcotest.test_case "bcast timing" `Quick test_bcast_arrival_times;
        ] );
      ( "queue",
        [
          Alcotest.test_case "latency" `Quick test_queue_latency;
          Alcotest.test_case "sender matching" `Quick test_queue_sender_matching;
          Alcotest.test_case "fifo" `Quick test_queue_fifo_per_pair;
          Alcotest.test_case "capacity" `Quick test_queue_capacity;
          Alcotest.test_case "spawn" `Quick test_spawn_start_message;
          Alcotest.test_case "idle" `Quick test_idle;
          QCheck_alcotest.to_alcotest test_exactly_once;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "defer + service" `Quick test_defer_then_service;
          Alcotest.test_case "bounded drop retry" `Quick test_drop_retry_bounded;
          Alcotest.test_case "corrupt nack retry" `Quick test_corrupt_nack_retry;
          Alcotest.test_case "head-of-line order" `Quick test_head_of_line_order;
        ] );
    ]
