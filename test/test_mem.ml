(* Tests for the memory subsystem: flat memory, cache directory (LRU,
   eviction), MOESI coherence (state transitions + safety property under
   random traffic), latency ordering, and transactional memory
   (isolation, commit order, conflicts, serialisability). *)

module Memory = Voltron_mem.Memory
module Cache = Voltron_mem.Cache
module Coherence = Voltron_mem.Coherence
module Tm = Voltron_mem.Tm

(* --- Memory ----------------------------------------------------------------- *)

let test_memory_rw () =
  let m = Memory.create 16 in
  Memory.write m 3 42;
  Alcotest.(check int) "read back" 42 (Memory.read m 3);
  Alcotest.check_raises "oob" (Invalid_argument "Memory.read: address 16 outside [0,16)")
    (fun () -> ignore (Memory.read m 16))

let test_memory_snapshot () =
  let m = Memory.create 8 in
  Memory.write m 0 1;
  let snap = Memory.snapshot m in
  Memory.write m 0 2;
  Memory.restore m snap;
  Alcotest.(check int) "restored" 1 (Memory.read m 0)

let test_checksum_prefix () =
  let a = Memory.create 8 and b = Memory.create 12 in
  Memory.write a 2 7;
  Memory.write b 2 7;
  Memory.write b 10 99 (* beyond the compared prefix *);
  Alcotest.(check int) "prefix checksums equal" (Memory.checksum_prefix a 8)
    (Memory.checksum_prefix b 8);
  Alcotest.(check bool) "full checksums differ" true
    (Memory.checksum a <> Memory.checksum b)

(* --- Cache directory --------------------------------------------------------- *)

let test_cache_insert_find () =
  let c = Cache.create ~sets:4 ~ways:2 in
  Alcotest.(check bool) "miss" true (Cache.find c 5 = None);
  ignore (Cache.insert c 5 Cache.E);
  Alcotest.(check bool) "hit E" true (Cache.find c 5 = Some Cache.E);
  Cache.set_state c 5 Cache.M;
  Alcotest.(check bool) "now M" true (Cache.find c 5 = Some Cache.M)

let test_cache_lru_eviction () =
  let c = Cache.create ~sets:1 ~ways:2 in
  ignore (Cache.insert c 0 Cache.S);
  ignore (Cache.insert c 1 Cache.S);
  Cache.touch c 0 (* 1 becomes LRU *);
  let victim = Cache.insert c 2 Cache.M in
  Alcotest.(check bool) "evicted LRU line 1" true (victim = Some (1, Cache.S));
  Alcotest.(check bool) "0 still present" true (Cache.find c 0 <> None)

let test_cache_invalidate () =
  let c = Cache.create ~sets:2 ~ways:1 in
  ignore (Cache.insert c 4 Cache.M);
  Cache.invalidate c 4;
  Alcotest.(check bool) "gone" true (Cache.find c 4 = None);
  Cache.invalidate c 4 (* idempotent *)

(* --- Coherence ---------------------------------------------------------------- *)

let mk_hier n = Coherence.create Coherence.default_config ~n_cores:n

let test_coherence_latencies () =
  let h = mk_hier 2 in
  (* Cold load goes to memory; hot load hits L1. *)
  let t1 = Coherence.access h ~now:0 ~core:0 Coherence.Dload 0 in
  Alcotest.(check bool) "cold load slow" true (t1 > 50);
  let t2 = Coherence.access h ~now:t1 ~core:0 Coherence.Dload 0 in
  Alcotest.(check int) "hot load is an L1 hit" (t1 + 1) t2

let test_coherence_c2c () =
  let h = mk_hier 2 in
  (* Core 0 dirties a line; core 1's load is served cache-to-cache. *)
  ignore (Coherence.access h ~now:0 ~core:0 Coherence.Dstore 0);
  let before = (Coherence.stats h ~core:1).Coherence.c2c_transfers in
  ignore (Coherence.access h ~now:200 ~core:1 Coherence.Dload 0);
  let after = (Coherence.stats h ~core:1).Coherence.c2c_transfers in
  Alcotest.(check int) "c2c transfer" (before + 1) after;
  (match Coherence.check_invariants h with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e)

let test_coherence_upgrade () =
  let h = mk_hier 2 in
  ignore (Coherence.access h ~now:0 ~core:0 Coherence.Dload 0);
  ignore (Coherence.access h ~now:200 ~core:1 Coherence.Dload 0);
  (* Both share the line; now core 0 writes: an upgrade, invalidating 1. *)
  ignore (Coherence.access h ~now:400 ~core:0 Coherence.Dstore 0);
  let s = (Coherence.stats h ~core:0).Coherence.upgrades in
  Alcotest.(check int) "upgrade counted" 1 s;
  (* Core 1 must re-miss. *)
  let m_before = (Coherence.stats h ~core:1).Coherence.l1d_misses in
  ignore (Coherence.access h ~now:600 ~core:1 Coherence.Dload 0);
  Alcotest.(check int) "core1 re-misses" (m_before + 1)
    (Coherence.stats h ~core:1).Coherence.l1d_misses;
  match Coherence.check_invariants h with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_coherence_ifetch_separate () =
  let h = mk_hier 2 in
  (* The same numeric address in instruction space never collides with
     data space or another core's code. *)
  ignore (Coherence.access h ~now:0 ~core:0 Coherence.Ifetch 0);
  let t = Coherence.access h ~now:200 ~core:0 Coherence.Ifetch 0 in
  Alcotest.(check int) "i-hit" 201 t;
  let d = Coherence.access h ~now:400 ~core:0 Coherence.Dload 0 in
  Alcotest.(check bool) "data still cold" true (d > 450)

(* Safety property: after any random access trace, MOESI invariants hold
   and completion times never precede request times. *)
let test_coherence_random =
  QCheck.Test.make ~name:"moesi invariants under random traffic" ~count:60
    QCheck.(list (triple (int_bound 3) bool (int_bound 255)))
    (fun trace ->
      let h = mk_hier 4 in
      let now = ref 0 in
      let ok = ref true in
      List.iter
        (fun (core, write, addr) ->
          let kind = if write then Coherence.Dstore else Coherence.Dload in
          let done_ = Coherence.access h ~now:!now ~core kind addr in
          if done_ <= !now then ok := false;
          now := !now + 3)
        trace;
      !ok && match Coherence.check_invariants h with Ok _ -> true | Error _ -> false)

(* --- Directory protocol -------------------------------------------------------- *)

(* Hand-computed expectations against the default directory pricing:
   dir_lat_msg 2, dir_lat_lookup 2, dir_lat_fwd 2, dir_lat_inv 4,
   lat_l2 8, lat_mem 100, lat_c2c 12 (8-word lines, so addr 0 and 8 are
   the first two lines, whose homes are cores 0 and 1). *)

let dir_config =
  { Coherence.default_config with Coherence.protocol = Coherence.Directory }

let mk_dir n = Coherence.create dir_config ~n_cores:n

let states_of h addr =
  let _, states = Coherence.l1d_line_states h ~addr in
  states

let sweep_ok h =
  match Coherence.check_invariants h with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_dir_read_fanout () =
  let h = mk_dir 4 in
  (* First reader: nobody holds the line — exclusive grant, request
     message + directory lookup over a memory fetch. *)
  let t0 = Coherence.access h ~now:0 ~core:0 Coherence.Dload 0 in
  Alcotest.(check int) "first reader: msg + lookup + mem" (0 + 2 + 2 + 100) t0;
  Alcotest.(check bool) "exclusive" true (states_of h 0 = [ (0, Cache.E) ]);
  Alcotest.(check bool) "owner recorded" true
    (Coherence.dir_owner h ~addr:0 = Some 0);
  (* Second reader: the home forwards to the exclusive owner (3-hop
     indirection); the owner supplies the line and downgrades to S. *)
  let t1 = Coherence.access h ~now:200 ~core:1 Coherence.Dload 0 in
  Alcotest.(check int) "second reader: 3-hop c2c" (200 + 2 + 2 + 2 + 12) t1;
  Alcotest.(check bool) "both shared" true
    (states_of h 0 = [ (0, Cache.S); (1, Cache.S) ]);
  Alcotest.(check bool) "ownership cleared" true
    (Coherence.dir_owner h ~addr:0 = None);
  Alcotest.(check int) "indirection counted" 1
    (Coherence.stats h ~core:1).Coherence.dir_indirections;
  (* Third reader: no owner left, so the home answers from L2. *)
  let t2 = Coherence.access h ~now:400 ~core:2 Coherence.Dload 0 in
  Alcotest.(check int) "third reader: home L2 hit" (400 + 2 + 2 + 8) t2;
  Alcotest.(check (list int)) "sharer fan-out" [ 0; 1; 2 ]
    (Coherence.dir_sharers h ~addr:0);
  sweep_ok h

let test_dir_upgrade_invalidations () =
  let h = mk_dir 4 in
  ignore (Coherence.access h ~now:0 ~core:0 Coherence.Dload 0);
  ignore (Coherence.access h ~now:200 ~core:1 Coherence.Dload 0);
  ignore (Coherence.access h ~now:400 ~core:2 Coherence.Dload 0);
  (* Write hit on the shared line: targeted invalidations to the two
     actual remote sharers (no broadcast), one invalidation round. *)
  let t = Coherence.access h ~now:600 ~core:0 Coherence.Dstore 0 in
  Alcotest.(check int) "upgrade: msg + lookup + inv round" (600 + 2 + 2 + 4) t;
  Alcotest.(check int) "upgrade counted" 1
    (Coherence.stats h ~core:0).Coherence.upgrades;
  Alcotest.(check int) "one invalidation per remote sharer" 2
    (Coherence.stats h ~core:0).Coherence.dir_invalidations;
  Alcotest.(check bool) "writer alone in M" true (states_of h 0 = [ (0, Cache.M) ]);
  Alcotest.(check (list int)) "sharers collapsed" [ 0 ]
    (Coherence.dir_sharers h ~addr:0);
  Alcotest.(check bool) "writer owns" true (Coherence.dir_owner h ~addr:0 = Some 0);
  sweep_ok h

let test_dir_eviction_writeback () =
  let small = { dir_config with Coherence.l1d_sets = 1; l1d_ways = 1 } in
  let h = Coherence.create small ~n_cores:2 in
  ignore (Coherence.access h ~now:0 ~core:0 Coherence.Dstore 0);
  Alcotest.(check (list int)) "dirty line tracked" [ 0 ]
    (Coherence.dir_sharers h ~addr:0);
  (* Filling line 1 evicts the dirty line: the home is notified (its entry
     vanishes — precise sharer tracking, no silent evictions) and the
     data writes back to L2. *)
  ignore (Coherence.access h ~now:200 ~core:0 Coherence.Dstore 8);
  Alcotest.(check (list int)) "eviction notified the home" []
    (Coherence.dir_sharers h ~addr:0);
  Alcotest.(check bool) "no stale owner" true (Coherence.dir_owner h ~addr:0 = None);
  Alcotest.(check int) "writeback counted" 1
    (Coherence.stats h ~core:0).Coherence.writebacks;
  (* A later reader is served the written-back copy from the home's L2,
     not routed to a phantom owner. *)
  let t = Coherence.access h ~now:400 ~core:1 Coherence.Dload 0 in
  Alcotest.(check int) "refill from home L2" (400 + 2 + 2 + 8) t;
  sweep_ok h

let test_dir_write_indirection () =
  let h = mk_dir 4 in
  ignore (Coherence.access h ~now:0 ~core:0 Coherence.Dstore 0);
  (* Write miss while a remote core owns the dirty line: the home forwards
     the request, the owner hands the line over cache-to-cache and
     invalidates itself — ownership transfers without a memory trip. *)
  let t = Coherence.access h ~now:200 ~core:1 Coherence.Dstore 0 in
  Alcotest.(check int) "3-hop ownership transfer" (200 + 2 + 2 + 2 + 12) t;
  let s1 = Coherence.stats h ~core:1 in
  Alcotest.(check int) "indirection" 1 s1.Coherence.dir_indirections;
  Alcotest.(check int) "c2c" 1 s1.Coherence.c2c_transfers;
  Alcotest.(check int) "old owner invalidated" 1 s1.Coherence.dir_invalidations;
  Alcotest.(check bool) "ownership transferred" true
    (Coherence.dir_owner h ~addr:0 = Some 1);
  Alcotest.(check bool) "writer alone" true (states_of h 0 = [ (1, Cache.M) ]);
  Alcotest.(check int) "dirty transfer needs no writeback" 0
    (Coherence.stats h ~core:0).Coherence.writebacks;
  sweep_ok h

let test_dir_stale_sharer_caught () =
  let h = mk_dir 2 in
  ignore (Coherence.access h ~now:0 ~core:0 Coherence.Dload 0);
  ignore (Coherence.access h ~now:200 ~core:1 Coherence.Dload 0);
  (* Arm the backdoor: the next invalidation round silently skips the
     highest-numbered remote sharer, leaving core 1's copy stale. *)
  Coherence.test_inject_stale_sharer h;
  ignore (Coherence.access h ~now:400 ~core:0 Coherence.Dstore 0);
  Alcotest.(check bool) "stale sharer left behind" true
    (states_of h 0 = [ (0, Cache.M); (1, Cache.S) ]);
  (* The single-writer oracle — the same sweep the runtime sanitizer runs
     at finalize (class "coherence-states") — must reject the hierarchy. *)
  match Coherence.check_invariants h with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale sharer escaped the invariant sweep"

(* Safety under random traffic, directory edition: same property as the
   snoop QCheck test, plus the directory/cache agreement audit that
   [check_invariants] adds on this backend. *)
let test_dir_random =
  QCheck.Test.make ~name:"directory invariants under random traffic" ~count:60
    QCheck.(list (triple (int_bound 3) bool (int_bound 255)))
    (fun trace ->
      let h = mk_dir 4 in
      let now = ref 0 in
      let ok = ref true in
      List.iter
        (fun (core, write, addr) ->
          let kind = if write then Coherence.Dstore else Coherence.Dload in
          let done_ = Coherence.access h ~now:!now ~core kind addr in
          if done_ <= !now then ok := false;
          now := !now + 3)
        trace;
      !ok
      && match Coherence.check_invariants h with Ok _ -> true | Error _ -> false)

(* --- Transactional memory ------------------------------------------------------ *)

let test_tm_isolation () =
  let mem = Memory.create 16 in
  let tm = Tm.create mem ~n_cores:2 in
  Tm.tx_begin tm ~core:0;
  Tm.write tm ~core:0 3 42;
  Alcotest.(check int) "own write visible" 42 (Tm.read tm ~core:0 3);
  Alcotest.(check int) "memory untouched" 0 (Memory.read mem 3);
  Tm.tx_begin tm ~core:1;
  Alcotest.(check int) "peer sees old value" 0 (Tm.read tm ~core:1 3)

let test_tm_commit_applies () =
  let mem = Memory.create 16 in
  let tm = Tm.create mem ~n_cores:2 in
  Tm.tx_begin tm ~core:0;
  Tm.tx_begin tm ~core:1;
  Tm.write tm ~core:0 1 10;
  Tm.write tm ~core:1 2 20;
  (match Tm.commit_round tm ~cores:[ 0; 1 ] with
  | `All_committed -> ()
  | `Conflict_at c -> Alcotest.fail (Printf.sprintf "unexpected conflict at %d" c));
  Alcotest.(check int) "w0" 10 (Memory.read mem 1);
  Alcotest.(check int) "w1" 20 (Memory.read mem 2)

let test_tm_raw_conflict () =
  let mem = Memory.create 16 in
  let tm = Tm.create mem ~n_cores:2 in
  Tm.tx_begin tm ~core:0;
  Tm.tx_begin tm ~core:1;
  Tm.write tm ~core:0 5 99;
  ignore (Tm.read tm ~core:1 5) (* reads stale pre-round value *);
  (match Tm.commit_round tm ~cores:[ 0; 1 ] with
  | `Conflict_at 1 -> ()
  | `Conflict_at c -> Alcotest.fail (Printf.sprintf "conflict at wrong core %d" c)
  | `All_committed -> Alcotest.fail "RAW conflict missed");
  (* Earlier core stays committed; later core rolled back. *)
  Alcotest.(check int) "core0 committed" 99 (Memory.read mem 5);
  Alcotest.(check bool) "core1 aborted" false (Tm.in_tx tm ~core:1)

let test_tm_waw_safe () =
  (* Write-write overlap without reads commits in core order: the later
     chunk's value wins, matching serial iteration order. *)
  let mem = Memory.create 16 in
  let tm = Tm.create mem ~n_cores:2 in
  Tm.tx_begin tm ~core:0;
  Tm.tx_begin tm ~core:1;
  Tm.write tm ~core:0 7 1;
  Tm.write tm ~core:1 7 2;
  (match Tm.commit_round tm ~cores:[ 0; 1 ] with
  | `All_committed -> ()
  | `Conflict_at _ -> Alcotest.fail "WAW must not conflict");
  Alcotest.(check int) "later core wins" 2 (Memory.read mem 7)

let test_tm_abort_discards () =
  let mem = Memory.create 8 in
  let tm = Tm.create mem ~n_cores:1 in
  Tm.tx_begin tm ~core:0;
  Tm.write tm ~core:0 0 5;
  Tm.abort tm ~core:0;
  Alcotest.(check int) "discarded" 0 (Memory.read mem 0);
  Alcotest.(check bool) "not in tx" false (Tm.in_tx tm ~core:0)

(* Serialisability: chunked transactional execution of random independent
   per-core writes equals running the chunks serially in core order. *)
let test_tm_serialisable =
  QCheck.Test.make ~name:"tm round equals serial core-order execution" ~count:100
    QCheck.(list (triple (int_bound 3) (int_bound 31) (int_bound 100)))
    (fun writes ->
      let mem_tx = Memory.create 32 and mem_serial = Memory.create 32 in
      let tm = Tm.create mem_tx ~n_cores:4 in
      for c = 0 to 3 do
        Tm.tx_begin tm ~core:c
      done;
      List.iter (fun (core, addr, v) -> Tm.write tm ~core addr v) writes;
      (match Tm.commit_round tm ~cores:[ 0; 1; 2; 3 ] with
      | `All_committed -> ()
      | `Conflict_at _ -> () (* no reads, cannot happen *));
      for c = 0 to 3 do
        List.iter
          (fun (core, addr, v) -> if core = c then Memory.write mem_serial addr v)
          writes
      done;
      Memory.equal mem_tx mem_serial)

let () =
  Alcotest.run "mem"
    [
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "snapshot" `Quick test_memory_snapshot;
          Alcotest.test_case "checksum prefix" `Quick test_checksum_prefix;
        ] );
      ( "cache",
        [
          Alcotest.test_case "insert/find" `Quick test_cache_insert_find;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "latencies" `Quick test_coherence_latencies;
          Alcotest.test_case "cache-to-cache" `Quick test_coherence_c2c;
          Alcotest.test_case "upgrade" `Quick test_coherence_upgrade;
          Alcotest.test_case "ifetch space" `Quick test_coherence_ifetch_separate;
          QCheck_alcotest.to_alcotest test_coherence_random;
        ] );
      ( "directory",
        [
          Alcotest.test_case "read-shared fan-out" `Quick test_dir_read_fanout;
          Alcotest.test_case "upgrade invalidations" `Quick
            test_dir_upgrade_invalidations;
          Alcotest.test_case "eviction writeback" `Quick
            test_dir_eviction_writeback;
          Alcotest.test_case "home-node indirection" `Quick
            test_dir_write_indirection;
          Alcotest.test_case "stale sharer caught" `Quick
            test_dir_stale_sharer_caught;
          QCheck_alcotest.to_alcotest test_dir_random;
        ] );
      ( "tm",
        [
          Alcotest.test_case "isolation" `Quick test_tm_isolation;
          Alcotest.test_case "commit applies" `Quick test_tm_commit_applies;
          Alcotest.test_case "raw conflict" `Quick test_tm_raw_conflict;
          Alcotest.test_case "waw safe" `Quick test_tm_waw_safe;
          Alcotest.test_case "abort discards" `Quick test_tm_abort_discards;
          QCheck_alcotest.to_alcotest test_tm_serialisable;
        ] );
    ]
