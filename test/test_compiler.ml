(* End-to-end compiler tests: build small HIR programs, compile them under
   every strategy and core count, simulate, and check the final memory
   image matches the reference interpreter (the oracle). *)

module B = Voltron_ir.Builder
module Inst = Voltron_isa.Inst
module Config = Voltron_machine.Config
module Driver = Voltron_compiler.Driver

let imm = B.imm

(* p1: straight-line arithmetic with stores. *)
let prog_straight () =
  let b = B.create "straight" in
  let out = B.array b ~name:"out" ~size:64 () in
  B.region b "main" (fun () ->
      let x = B.add b (imm 3) (imm 4) in
      let y = B.mul b x (imm 5) in
      let z = B.sub b y (imm 1) in
      let w = B.binop b Inst.Xor y z in
      B.store b out (imm 0) y;
      B.store b out (imm 1) z;
      B.store b out (imm 2) w;
      let q = B.binop b Inst.Div z (imm 3) in
      B.store b out (imm 3) q);
  B.finish b

(* p2: counted loop with an accumulator and an output array (DOALL with
   accumulator expansion). *)
let prog_loop_sum () =
  let b = B.create "loop_sum" in
  let src = B.array b ~name:"src" ~size:256 ~init:(fun i -> (i * 7) mod 23) () in
  let dst = B.array b ~name:"dst" ~size:256 () in
  let out = B.array b ~name:"out" ~size:8 () in
  B.region b "main" (fun () ->
      let acc = B.fresh b in
      B.assign b acc (Voltron_ir.Hir.Operand (imm 0));
      B.for_ b ~from:(imm 0) ~limit:(imm 256) (fun i ->
          let v = B.load b src i in
          let v2 = B.mul b v v in
          B.store b dst i v2;
          B.assign b acc (Voltron_ir.Hir.Alu (Inst.Add, Voltron_ir.Hir.Reg acc, v2)));
      B.store b out (imm 0) (Voltron_ir.Hir.Reg acc));
  B.finish b

(* p3: loop with control flow inside the body. *)
let prog_branchy () =
  let b = B.create "branchy" in
  let src = B.array b ~name:"src" ~size:128 ~init:(fun i -> i * 13 mod 31) () in
  let dst = B.array b ~name:"dst" ~size:128 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 128) (fun i ->
          let v = B.load b src i in
          let c = B.cmp b Inst.Gt v (imm 15) in
          B.if_ b c
            (fun () ->
              let big = B.mul b v (imm 3) in
              B.store b dst i big)
            (fun () ->
              let small = B.add b v (imm 100) in
              B.store b dst i small)));
  B.finish b

(* p4: do-while pointer-chase style loop (not DOALL). *)
let prog_dowhile () =
  let b = B.create "dowhile" in
  let data = B.array b ~name:"data" ~size:64 ~init:(fun i -> if i = 40 then 0 else (i + 3) mod 64) () in
  let out = B.array b ~name:"out" ~size:4 () in
  B.region b "main" (fun () ->
      let p = B.fresh b in
      let count = B.fresh b in
      B.assign b p (Voltron_ir.Hir.Operand (imm 0));
      B.assign b count (Voltron_ir.Hir.Operand (imm 0));
      B.do_while b (fun () ->
          let next = B.load b data (Voltron_ir.Hir.Reg p) in
          B.assign b p (Voltron_ir.Hir.Operand next);
          B.assign b count
            (Voltron_ir.Hir.Alu (Inst.Add, Voltron_ir.Hir.Reg count, imm 1));
          B.cmp b Inst.Ne next (imm 0));
      B.store b out (imm 0) (Voltron_ir.Hir.Reg p);
      B.store b out (imm 1) (Voltron_ir.Hir.Reg count));
  B.finish b

(* p5: two independent load streams combined — the strands/gzip shape. *)
let prog_streams () =
  let b = B.create "streams" in
  let s1 = B.array b ~name:"s1" ~size:512 ~init:(fun i -> i * 3) () in
  let s2 = B.array b ~name:"s2" ~size:512 ~init:(fun i -> i * 5) () in
  let dst = B.array b ~name:"dst" ~size:512 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 512) (fun i ->
          let a = B.load b s1 i in
          let c = B.load b s2 i in
          let x = B.mul b a (imm 7) in
          let y = B.mul b c (imm 9) in
          let z = B.add b x y in
          B.store b dst i z));
  B.finish b

(* p6: multiple regions with memory handoff between them. *)
let prog_multi_region () =
  let b = B.create "multi" in
  let a1 = B.array b ~name:"a1" ~size:128 ~init:(fun i -> i) () in
  let a2 = B.array b ~name:"a2" ~size:128 () in
  let out = B.array b ~name:"out" ~size:8 () in
  B.region b "phase1" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 128) (fun i ->
          let v = B.load b a1 i in
          B.store b a2 i (B.mul b v v)));
  B.region b "phase2" (fun () ->
      let acc = B.fresh b in
      B.assign b acc (Voltron_ir.Hir.Operand (imm 0));
      B.for_ b ~from:(imm 0) ~limit:(imm 128) (fun i ->
          let v = B.load b a2 i in
          B.assign b acc (Voltron_ir.Hir.Alu (Inst.Add, Voltron_ir.Hir.Reg acc, v)));
      B.store b out (imm 0) (Voltron_ir.Hir.Reg acc));
  B.finish b

(* p7: loop with a genuine cross-iteration memory recurrence (must never
   be chunked as DOALL). *)
let prog_recurrence () =
  let b = B.create "recurrence" in
  let a = B.array b ~name:"a" ~size:128 ~init:(fun i -> if i = 0 then 1 else 0) () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 1) ~limit:(imm 128) (fun i ->
          let prev = B.load b a (B.sub b i (imm 1)) in
          let v = B.add b (B.mul b prev (imm 3) ) (imm 1) in
          let v = B.binop b Inst.And v (imm 0xffff) in
          B.store b a i v));
  B.finish b

let programs =
  [
    ("straight", prog_straight);
    ("loop_sum", prog_loop_sum);
    ("branchy", prog_branchy);
    ("dowhile", prog_dowhile);
    ("streams", prog_streams);
    ("multi_region", prog_multi_region);
    ("recurrence", prog_recurrence);
  ]

let choices : (string * Voltron_compiler.Select.choice) list =
  [ ("seq", `Seq); ("ilp", `Ilp); ("tlp", `Tlp); ("llp", `Llp); ("hybrid", `Hybrid) ]

let check_one prog_f choice n_cores () =
  let p = prog_f () in
  let machine = Config.default ~n_cores in
  let compiled = Driver.compile ~machine ~choice p in
  match Driver.verify machine compiled with
  | Ok cycles -> Alcotest.(check bool) "ran" true (cycles > 0)
  | Error msg -> Alcotest.fail msg

let matrix_tests =
  List.concat_map
    (fun (pname, pf) ->
      List.concat_map
        (fun (cname, choice) ->
          List.map
            (fun cores ->
              Alcotest.test_case
                (Printf.sprintf "%s/%s/%dc" pname cname cores)
                `Quick
                (check_one pf choice cores))
            [ 1; 2; 4 ])
        choices)
    programs

(* Speedup sanity: parallelisable programs should not slow down much, and
   DOALL-friendly ones should speed up on 4 cores. *)
let cycles_of p choice n_cores =
  let machine = Config.default ~n_cores in
  let compiled = Driver.compile ~machine ~choice p in
  match Driver.verify machine compiled with
  | Ok cycles -> cycles
  | Error msg -> Alcotest.fail msg

let test_llp_speedup () =
  let base = cycles_of (prog_streams ()) `Seq 1 in
  let par = cycles_of (prog_streams ()) `Llp 4 in
  let speedup = float_of_int base /. float_of_int par in
  if speedup < 1.5 then
    Alcotest.fail (Printf.sprintf "LLP speedup too low: %.2f" speedup)

let test_recurrence_not_doall () =
  let p = prog_recurrence () in
  let machine = Config.default ~n_cores:4 in
  let profile = Voltron_analysis.Profile.collect p in
  let plan = Voltron_compiler.Select.plan ~machine ~profile `Llp p in
  List.iter
    (fun (pr : Voltron_compiler.Select.planned_region) ->
      match pr.Voltron_compiler.Select.pr_strategy with
      | Voltron_compiler.Codegen.Doall _ ->
        Alcotest.fail "recurrence loop must not be classified DOALL"
      | _ -> ())
    plan

(* --- Selection heuristics ------------------------------------------------------- *)

module Select = Voltron_compiler.Select

let plan_of p choice =
  let machine = Config.default ~n_cores:4 in
  let profile = Voltron_analysis.Profile.collect p in
  Select.plan ~machine ~profile choice p

let strategy_names p choice =
  List.map
    (fun (r : Select.planned_region) -> Select.strategy_name r.Select.pr_strategy)
    (plan_of p choice)

let test_select_tiny_region_stays_serial () =
  let b = B.create "tiny" in
  let out = B.array b ~name:"out" ~size:4 () in
  B.region b "glue" (fun () -> B.store b out (imm 0) (B.add b (imm 1) (imm 2)));
  let p = B.finish b in
  Alcotest.(check (list string)) "tiny region serial" [ "seq" ]
    (strategy_names p `Hybrid)

let test_select_small_trip_not_doall () =
  (* A 4-iteration DOALL loop is below the trip threshold (2 x cores). *)
  let b = B.create "smalltrip" in
  let a = B.array b ~name:"a" ~size:64 ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 4) (fun i ->
          (* enough body weight to clear the tiny-region bar *)
          let v = B.load b a i in
          let rec grind acc k =
            if k = 0 then acc else grind (B.mul b acc (imm 3)) (k - 1)
          in
          B.store b a i (grind v 8)));
  let p = B.finish b in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("not doall: " ^ name) true
        (name = "seq" || name = "ilp" || name = "strands" || name = "dswp"))
    (strategy_names p `Hybrid)

let test_select_forced_llp_degrades_to_seq () =
  (* Under forced LLP, non-DOALL regions run serial. *)
  let p = prog_dowhile () in
  List.iter
    (fun name -> Alcotest.(check string) "seq fallback" "seq" name)
    (strategy_names p `Llp)

let test_select_miss_fraction_drives_strands () =
  let profile_of p = Voltron_analysis.Profile.collect p in
  (* Missy region: big array, strided; resident region: small array. *)
  let missy =
    let b = B.create "missy" in
    let a = B.array b ~name:"a" ~size:8192 ~init:(fun i -> i) () in
    B.region b "m" (fun () ->
        let x = B.fresh b in
        B.assign b x (Voltron_ir.Hir.Operand (imm 0));
        B.for_ b ~from:(imm 0) ~limit:(imm 512) (fun i ->
            let j = B.binop b Inst.And (B.mul b i (imm 8)) (imm 8191) in
            let v = B.load b a j in
            B.assign b x (Voltron_ir.Hir.Operand (B.binop b Inst.Xor (Voltron_ir.Hir.Reg x) v)));
        B.store b a (imm 0) (Voltron_ir.Hir.Reg x));
    B.finish b
  in
  let region = List.hd missy.Voltron_ir.Hir.regions in
  let frac =
    Select.miss_fraction ~profile:(profile_of missy) region.Voltron_ir.Hir.stmts
  in
  Alcotest.(check bool) (Printf.sprintf "missy fraction %.2f high" frac) true
    (frac > 0.15)

(* --- Scheduler invariants ------------------------------------------------------ *)

(* In coupled mode every block must occupy the same number of bundles on
   every core (lock-step), with the BR in the final bundle of each. *)
let test_coupled_blocks_aligned () =
  let p = prog_streams () in
  let machine = Config.default ~n_cores:4 in
  let lay = Voltron_ir.Layout.compute p in
  let lctx = Voltron_ir.Lower.make_ctx ~layout:lay ~first_vreg:p.Voltron_ir.Hir.n_vregs in
  let region = List.hd p.Voltron_ir.Hir.regions in
  let cfg = Voltron_ir.Lower.region lctx region.Voltron_ir.Hir.stmts in
  let memdep =
    Voltron_analysis.Memdep.create ~region_stmts:region.Voltron_ir.Hir.stmts cfg
  in
  let dg = Voltron_analysis.Depgraph.build ~cfg ~memdep ~latency:Config.latency in
  let partition = Voltron_compiler.Partition.bug ~n_cores:4 ~comm_latency:1 ~dg ~cfg in
  let sched =
    Voltron_compiler.Sched.schedule_region ~machine ~cfg ~dg ~partition
      ~mode:Voltron_isa.Inst.Coupled
  in
  let participants = sched.Voltron_compiler.Sched.participants in
  Alcotest.(check int) "all cores participate" 4 (List.length participants);
  Array.iteri
    (fun bi _ ->
      let lengths =
        List.map
          (fun core ->
            List.length sched.Voltron_compiler.Sched.block_code.(core).(bi))
          participants
      in
      match lengths with
      | first :: rest ->
        List.iter
          (fun l ->
            Alcotest.(check int) (Printf.sprintf "block %d aligned" bi) first l)
          rest
      | [] -> Alcotest.fail "no participants")
    cfg.Voltron_ir.Cfg.blocks;
  (* Bundles respect the configured widths. *)
  List.iter
    (fun core ->
      Array.iter
        (fun bundles ->
          List.iter
            (fun b ->
              Alcotest.(check bool) "legal bundle" true
                (Voltron_isa.Bundle.legal ~issue_width:1 ~comm_width:1 b))
            bundles)
        sched.Voltron_compiler.Sched.block_code.(core))
    participants

let test_wide_issue_schedules_pack () =
  (* With issue width 4, the sequential schedule of a wide expression tree
     is much shorter than with width 1. *)
  let p = prog_straight () in
  let cycles width =
    let machine =
      { (Config.default ~n_cores:1) with Config.issue_width = width }
    in
    let compiled = Driver.compile ~machine ~choice:`Seq p in
    match Driver.verify machine compiled with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let narrow = cycles 1 and wide = cycles 4 in
  Alcotest.(check bool)
    (Printf.sprintf "wide (%d) beats narrow (%d)" wide narrow)
    true (wide < narrow)

(* --- Optimisation passes ------------------------------------------------------ *)

module Opt = Voltron_compiler.Opt
module Hir = Voltron_ir.Hir

let checksum p = (Voltron_ir.Interp.run p).Voltron_ir.Interp.checksum

let count_node pred p =
  let n = ref 0 in
  List.iter
    (fun (r : Hir.region) ->
      Hir.iter_stmts (fun s -> if pred s.Hir.node then incr n) r.Hir.stmts)
    p.Hir.regions;
  !n

let is_if = function Hir.If _ -> true | _ -> false

let prog_with_branches () =
  let b = B.create "branches" in
  let src = B.array b ~name:"src" ~size:128 ~init:(fun i -> (i * 13) mod 31) () in
  let dst = B.array b ~name:"dst" ~size:128 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 128) (fun i ->
          let v = B.load b src i in
          let c = B.cmp b Inst.Gt v (imm 15) in
          let t = B.fresh b in
          B.if_ b c
            (fun () -> B.assign b t (Hir.Alu (Inst.Mul, v, imm 3)))
            (fun () -> B.assign b t (Hir.Alu (Inst.Add, v, imm 100)));
          B.store b dst i (Hir.Reg t)));
  B.finish b

let test_if_conversion_removes_branches () =
  let p = prog_with_branches () in
  let q = Opt.program p in
  Alcotest.(check bool) "had an if" true (count_node is_if p > 0);
  Alcotest.(check int) "ifs converted" 0 (count_node is_if q);
  Alcotest.(check int) "same semantics" (checksum p) (checksum q)

let test_if_conversion_skips_impure () =
  (* Branches containing stores must not be converted. *)
  let p = prog_branchy () in
  let q = Opt.program p in
  Alcotest.(check bool) "store-bearing if kept" true (count_node is_if q > 0);
  Alcotest.(check int) "same semantics" (checksum p) (checksum q)

let test_unroll_semantics_and_shape () =
  let p = prog_loop_sum () in
  let q = Opt.program ~options:{ Opt.none with Opt.unroll = 4 } p in
  Alcotest.(check int) "same semantics" (checksum p) (checksum q);
  (* The unrolled loop carries 4 body copies: more statements. *)
  let count p = count_node (fun _ -> true) p in
  Alcotest.(check bool) "bigger body" true (count q > count p);
  (* Non-dividing factors leave the loop alone. *)
  let r = Opt.program ~options:{ Opt.none with Opt.unroll = 7 } p in
  Alcotest.(check int) "7 does not divide 256... wait it doesn't" (count p) (count r)

let test_dce_removes_dead () =
  let b = B.create "dead" in
  let out = B.array b ~name:"out" ~size:4 () in
  B.region b "main" (fun () ->
      let live = B.add b (imm 1) (imm 2) in
      let _dead = B.mul b (imm 3) (imm 4) in
      let _dead2 = B.add b _dead (imm 1) in
      B.store b out (imm 0) live);
  let p = B.finish b in
  let q = Opt.program ~options:{ Opt.none with Opt.dce = true } p in
  let assigns p = count_node (function Hir.Assign _ -> true | _ -> false) p in
  Alcotest.(check int) "dead chain removed" (assigns p - 2) (assigns q);
  Alcotest.(check int) "same semantics" (checksum p) (checksum q)

let test_opt_preserves_random_programs =
  QCheck.Test.make ~name:"optimisation preserves the oracle" ~count:40
    QCheck.(pair (int_bound 100000) (int_bound 2))
    (fun (seed, unroll_sel) ->
      let p =
        (* Reuse the strategy-matrix programs plus random seeds via the
           branchy generator family. *)
        match seed mod 4 with
        | 0 -> prog_branchy ()
        | 1 -> prog_loop_sum ()
        | 2 -> prog_with_branches ()
        | _ -> prog_streams ()
      in
      let options =
        { Opt.if_convert = true; if_limit = 4; unroll = 1 + unroll_sel; dce = true }
      in
      let q = Opt.program ~options p in
      checksum p = checksum q)

let test_optimized_compiles_verified () =
  let p = Opt.program ~options:{ Opt.default with Opt.unroll = 2 } (prog_with_branches ()) in
  List.iter
    (fun choice ->
      let machine = Config.default ~n_cores:4 in
      let compiled = Driver.compile ~machine ~choice p in
      match Driver.verify machine compiled with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [ `Seq; `Ilp; `Tlp; `Llp; `Hybrid ]

(* --- Static estimator vs measured attribution ---------------------------------- *)

module Estimate = Voltron_compiler.Estimate
module Codegen = Voltron_compiler.Codegen
module Machine = Voltron_machine.Machine
module Region_profile = Voltron_obs.Region_profile
module Suite = Voltron_workloads.Suite

(* Compile hybrid, run with region attribution attached, and return the
   plan, the static estimate table and measured per-region wall cycles. *)
let run_attributed ~machine ?choice p =
  let compiled = Driver.compile ~machine ?choice ~check:false p in
  let est = Estimate.create ~machine p in
  let table = Estimate.table est compiled.Driver.plan in
  let m = Machine.create machine compiled.Driver.executable in
  let rp = Region_profile.attach m compiled in
  let result = Machine.run m in
  Alcotest.(check bool) "finished" true (result.Machine.outcome = Machine.Finished);
  (compiled.Driver.plan, table, Region_profile.rows rp)

let measured_wall ~n_cores rows name =
  List.fold_left
    (fun acc (r : Region_profile.row) ->
      if r.Region_profile.r_region = name then
        acc +. float_of_int r.Region_profile.r_cycles
      else acc)
    0. rows
  /. float_of_int n_cores

(* The per-region static estimate must track the measured per-region
   cycles on fixed workloads: every non-glue region within 4x either way,
   geomean error under the sweep's 30% acceptance bar plus slack for the
   small per-benchmark sample. *)
let test_estimator_tracks_attribution () =
  let machine = Config.default ~n_cores:4 in
  List.iter
    (fun bname ->
      (* Full scale: the estimator's overhead constants are calibrated on
         the full-size sweep; tiny scales shift trip-bound outliers. *)
      let p = (Suite.by_name bname).Suite.build ~scale:1.0 () in
      let _plan, table, rows = run_attributed ~machine p in
      let lnsum = ref 0. in
      let n = ref 0 in
      List.iter
        (fun (row : Estimate.row) ->
          let meas = measured_wall ~n_cores:4 rows row.Estimate.e_region in
          (* Same noise floor as `voltron_sim analyze --all`: glue regions
             of a few cycles carry no signal. *)
          if meas > 64. then begin
            let ratio = row.Estimate.e_cycles /. meas in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s (%s) ratio %.2f within 4x" bname
                 row.Estimate.e_region row.Estimate.e_strategy ratio)
              true
              (ratio > 0.25 && ratio < 4.0);
            lnsum := !lnsum +. abs_float (log ratio);
            incr n
          end)
        table;
      Alcotest.(check bool) (bname ^ " has measurable regions") true (!n >= 3);
      let geo = exp (!lnsum /. float_of_int !n) -. 1. in
      (* The ±30% acceptance bar applies to the full-suite sweep (checked
         by `analyze --all` in CI); a two-benchmark sample is noisier, so
         gate at 2x on average here. *)
      Alcotest.(check bool) (Printf.sprintf "%s geomean %.1f%% under 100%%" bname (geo *. 100.))
        true (geo < 1.0))
    [ "164.gzip"; "gsmdecode" ]

(* The DSWP pipeline estimate against what the simulator attributes to the
   stage cores: the balanced-stage estimate is a speedup in [1, n_cores]
   and an upper bound on the occupancy the queues actually sustain
   (attribution shows stages blocked on operand-queue round-trips most of
   the time). *)
let test_dswp_estimate_vs_occupancy () =
  let machine = Config.default ~n_cores:4 in
  let checked = ref 0 in
  List.iter
    (fun bname ->
      let p = (Suite.by_name bname).Suite.build ~scale:0.2 () in
      let plan, _table, rows = run_attributed ~machine ~choice:`Tlp p in
      List.iter
        (fun (pr : Select.planned_region) ->
          match pr.Select.pr_strategy with
          | Codegen.Dswp ->
            let est = Select.dswp_estimate ~machine pr.Select.pr_stmts in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s estimate %.2f in [1, 4]" bname pr.Select.pr_name est)
              true
              (est >= 1.0 && est <= 4.0);
            let wall = measured_wall ~n_cores:4 rows pr.Select.pr_name in
            let busy =
              List.fold_left
                (fun acc (r : Region_profile.row) ->
                  if r.Region_profile.r_region = pr.Select.pr_name then
                    acc +. float_of_int r.Region_profile.r_busy
                  else acc)
                0. rows
            in
            if wall > 64. then begin
              let occupancy = busy /. wall in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s occupancy %.2f positive, bounded" bname
                   pr.Select.pr_name occupancy)
                true
                (occupancy > 0.0 && occupancy <= 4.0);
              (* Occupancy counts every busy issue slot, including
                 replicated glue the estimate's balanced-stage model does
                 not credit as speedup — allow it to run slightly ahead. *)
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s estimate %.2f tracks occupancy %.2f" bname
                   pr.Select.pr_name est occupancy)
                true
                (est >= occupancy *. 0.75);
              incr checked
            end
          | _ -> ())
        plan)
    [ "epic"; "183.equake" ];
  Alcotest.(check bool) "saw dswp regions" true (!checked >= 2)

(* --- Proven vs speculative DOALL on the window kernel --------------------------- *)

(* The masked double-buffer kernel: the sharpened oracle proves the halves
   disjoint, so the plan carries a non-speculative DOALL. Re-emitting the
   same plan with dp_speculative forced on (what affine evidence alone
   would produce) must still verify — and cost measurably more cycles for
   the TM bookkeeping. *)
let test_window_proven_beats_speculative () =
  let machine = Config.default ~n_cores:4 in
  let b = B.create "window" in
  Voltron_workloads.Kernels.doall_window b ~name:"win" ~n:1024 ~work:4 ~seed:7;
  let p = B.finish b in
  let compiled = Driver.compile ~machine ~check:false p in
  let is_proven_doall (pr : Select.planned_region) =
    match pr.Select.pr_strategy with
    | Codegen.Doall dp -> not dp.Codegen.dp_speculative
    | _ -> false
  in
  Alcotest.(check bool) "plan carries a proven doall" true
    (List.exists is_proven_doall compiled.Driver.plan);
  let spec_plan =
    List.map
      (fun (pr : Select.planned_region) ->
        match pr.Select.pr_strategy with
        | Codegen.Doall dp ->
          {
            pr with
            Select.pr_strategy = Codegen.Doall { dp with Codegen.dp_speculative = true };
          }
        | _ -> pr)
      compiled.Driver.plan
  in
  let cg = Codegen.create machine p in
  List.iter
    (fun (pr : Select.planned_region) ->
      Codegen.emit_region cg ~name:pr.Select.pr_name pr.Select.pr_stmts
        pr.Select.pr_strategy)
    spec_plan;
  let spec_exe = Codegen.finalize cg in
  let proven_cycles =
    match Driver.verify machine compiled with
    | Ok c -> c
    | Error e -> Alcotest.fail ("proven build: " ^ e)
  in
  let spec_cycles =
    match Driver.verify machine { compiled with Driver.executable = spec_exe } with
    | Ok c -> c
    | Error e -> Alcotest.fail ("speculative build: " ^ e)
  in
  Alcotest.(check bool)
    (Printf.sprintf "proven %d < speculative %d" proven_cycles spec_cycles)
    true
    (proven_cycles < spec_cycles)

let () =
  Alcotest.run "compiler"
    [
      ("matrix", matrix_tests);
      ( "properties",
        [
          Alcotest.test_case "llp speedup" `Quick test_llp_speedup;
          Alcotest.test_case "recurrence rejected" `Quick test_recurrence_not_doall;
        ] );
      ( "select",
        [
          Alcotest.test_case "tiny stays serial" `Quick test_select_tiny_region_stays_serial;
          Alcotest.test_case "small trip not doall" `Quick test_select_small_trip_not_doall;
          Alcotest.test_case "llp fallback seq" `Quick test_select_forced_llp_degrades_to_seq;
          Alcotest.test_case "miss fraction" `Quick test_select_miss_fraction_drives_strands;
        ] );
      ( "sched",
        [
          Alcotest.test_case "coupled lock-step alignment" `Quick
            test_coupled_blocks_aligned;
          Alcotest.test_case "wide issue packs" `Quick test_wide_issue_schedules_pack;
        ] );
      ( "opt",
        [
          Alcotest.test_case "if-conversion" `Quick test_if_conversion_removes_branches;
          Alcotest.test_case "impure ifs kept" `Quick test_if_conversion_skips_impure;
          Alcotest.test_case "unrolling" `Quick test_unroll_semantics_and_shape;
          Alcotest.test_case "dce" `Quick test_dce_removes_dead;
          Alcotest.test_case "optimized verifies" `Quick test_optimized_compiles_verified;
          QCheck_alcotest.to_alcotest test_opt_preserves_random_programs;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "tracks attribution" `Slow test_estimator_tracks_attribution;
          Alcotest.test_case "dswp estimate vs occupancy" `Slow
            test_dswp_estimate_vs_occupancy;
          Alcotest.test_case "window proven beats speculative" `Quick
            test_window_proven_beats_speculative;
        ] );
    ]
