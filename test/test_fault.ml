(* Tests for the fault-injection and recovery subsystem: the injector's
   configuration and backoff schedule, the ECC memory model, end-to-end
   recovery of every fault kind through the full compile-and-simulate
   pipeline (the answer must still verify against the reference
   interpreter), deterministic replay from a fixed seed, and the graceful
   degradation ladder. *)

module Fault = Voltron_fault.Fault
module Ecc = Voltron_fault.Ecc
module Memory = Voltron_mem.Memory
module Stats = Voltron_machine.Stats
module Config = Voltron_machine.Config
module Run = Voltron.Run
module Suite = Voltron_workloads.Suite

let scale = 0.1

let build name = (Suite.by_name name).Suite.build ~scale ()

let with_fault fault cfg = { cfg with Config.fault }

(* --- Configuration and backoff ------------------------------------------- *)

let test_config_helpers () =
  Alcotest.(check bool) "disabled is disabled" false (Fault.enabled Fault.disabled);
  let u = Fault.uniform ~seed:3 ~rate:0.01 () in
  Alcotest.(check bool) "uniform is enabled" true (Fault.enabled u);
  Alcotest.(check (float 0.)) "drop rate set" 0.01 u.Fault.drop_rate;
  Alcotest.(check (float 0.)) "stall rate set" 0.01 u.Fault.stall_rate;
  Alcotest.(check int) "seed carried" 3 u.Fault.fault_seed;
  Alcotest.(check bool) "zero uniform stays disabled" false
    (Fault.enabled (Fault.uniform ~rate:0.0 ()))

let test_backoff_schedule () =
  let cfg = { Fault.disabled with Fault.retry_timeout = 16; backoff_cap = 64 } in
  Alcotest.(check int) "attempt 1" 16 (Fault.backoff_of cfg ~attempt:1);
  Alcotest.(check int) "attempt 2 doubles" 32 (Fault.backoff_of cfg ~attempt:2);
  Alcotest.(check int) "attempt 3 doubles again" 64 (Fault.backoff_of cfg ~attempt:3);
  Alcotest.(check int) "capped at timeout * cap" (16 * 64)
    (Fault.backoff_of cfg ~attempt:40);
  Alcotest.(check bool) "attempt must be 1-based" true
    (try
       ignore (Fault.backoff_of cfg ~attempt:0);
       false
     with Invalid_argument _ -> true)

let test_degradation_rungs () =
  Alcotest.(check bool) "full -> decoupled-only" true
    (Fault.degrade Fault.Full = Some Fault.Decoupled_only);
  Alcotest.(check bool) "decoupled-only -> serial" true
    (Fault.degrade Fault.Decoupled_only = Some Fault.Serial_core0);
  Alcotest.(check bool) "serial is the floor" true
    (Fault.degrade Fault.Serial_core0 = None);
  Alcotest.(check string) "floor name" "serial-core0"
    (Fault.level_name Fault.Serial_core0)

(* --- ECC model ------------------------------------------------------------ *)

let test_ecc_memory () =
  let mem = Memory.create 16 in
  Memory.write mem 3 10;
  Memory.write mem 5 20;
  Memory.write mem 7 30;
  let e = Ecc.create () in
  Memory.attach_ecc mem e;
  (* A read of a flipped word is corrected on demand. *)
  Memory.corrupt mem 3 ~flip:(fun v -> v lxor 1);
  Alcotest.(check int) "read corrected" 10 (Memory.read mem 3);
  Alcotest.(check int) "correction counted" 1 (Ecc.corrected e);
  (* An overwrite of a flipped word masks the fault (AVF unACE). *)
  Memory.corrupt mem 5 ~flip:(fun v -> v lxor 4);
  Memory.write mem 5 9;
  Alcotest.(check int) "masked value wins" 9 (Memory.read mem 5);
  Alcotest.(check int) "mask counted" 1 (Ecc.masked e);
  (* A flip never read is repaired by the end-of-run scrub. *)
  Memory.corrupt mem 7 ~flip:(fun v -> v lxor 8);
  Memory.scrub mem;
  Alcotest.(check int) "scrub restored" 30 (Memory.read mem 7);
  Alcotest.(check int) "scrub counted" 1 (Ecc.scrubbed e);
  Alcotest.(check int) "nothing pending" 0 (Ecc.pending e)

(* --- End-to-end recovery -------------------------------------------------- *)

let test_network_faults_recovered () =
  (* Dropped and corrupted queue-mode messages: the retry protocol must
     deliver every value, so the run still verifies. *)
  let fault =
    { Fault.disabled with Fault.fault_seed = 7; drop_rate = 0.05; corrupt_rate = 0.05 }
  in
  let m = Run.run ~tweak:(with_fault fault) ~n_cores:4 (build "cjpeg") in
  Alcotest.(check bool) "verified under message faults" true m.Run.verified;
  let st = m.Run.stats in
  Alcotest.(check bool) "faults actually injected" true (st.Stats.faults_injected > 0);
  Alcotest.(check bool) "retry protocol fired" true (st.Stats.net_retries > 0)

let test_memory_faults_recovered () =
  (* Bit flips in data memory: ECC corrects, masks or scrubs every one. *)
  let fault = { Fault.disabled with Fault.fault_seed = 11; flip_rate = 5e-3 } in
  let m = Run.run ~tweak:(with_fault fault) ~n_cores:4 (build "cjpeg") in
  Alcotest.(check bool) "verified under bit flips" true m.Run.verified;
  let st = m.Run.stats in
  let handled =
    st.Stats.ecc_corrected + st.Stats.ecc_scrubbed + st.Stats.flips_masked
  in
  Alcotest.(check bool) "flips injected" true (st.Stats.faults_injected > 0);
  Alcotest.(check int) "every flip accounted for" st.Stats.faults_injected handled

let test_spurious_aborts_recovered () =
  (* Spuriously aborted TM rounds reuse the rollback + serial re-execution
     path, so speculation stays correct. *)
  let fault = { Fault.disabled with Fault.fault_seed = 5; tm_abort_rate = 1.0 } in
  let m = Run.run ~choice:`Llp ~tweak:(with_fault fault) ~n_cores:4 (build "183.equake") in
  Alcotest.(check bool) "verified under spurious aborts" true m.Run.verified;
  Alcotest.(check bool) "aborts injected" true (m.Run.stats.Stats.spurious_aborts > 0)

let test_stall_faults_recovered () =
  (* Transient per-core stalls only cost time, never correctness. *)
  let fault =
    { Fault.disabled with Fault.fault_seed = 13; stall_rate = 1e-3; stall_cycles = 12 }
  in
  let m = Run.run ~tweak:(with_fault fault) ~n_cores:4 (build "gsmdecode") in
  Alcotest.(check bool) "verified under stall faults" true m.Run.verified;
  Alcotest.(check bool) "stalls injected" true (m.Run.stats.Stats.stall_faults > 0)

let test_deterministic_replay () =
  (* A faulty run is a deterministic function of (program, config, seed):
     identical cycles and identical fault history on replay. *)
  let fault = Fault.uniform ~seed:42 ~rate:1e-3 () in
  let go () = Run.run ~tweak:(with_fault fault) ~n_cores:4 (build "cjpeg") in
  let a = go () and b = go () in
  Alcotest.(check bool) "first verified" true a.Run.verified;
  Alcotest.(check int) "same cycles" a.Run.cycles b.Run.cycles;
  Alcotest.(check int) "same fault count" a.Run.stats.Stats.faults_injected
    b.Run.stats.Stats.faults_injected;
  Alcotest.(check int) "same retries" a.Run.stats.Stats.net_retries
    b.Run.stats.Stats.net_retries

let test_disabled_is_identical () =
  (* The injector must be pay-for-use: a run with the (default) disabled
     config is cycle-identical to one with no fault machinery tweak at
     all. *)
  let plain = Run.run ~n_cores:4 (build "gsmdecode") in
  let faulted = Run.run ~tweak:(with_fault Fault.disabled) ~n_cores:4 (build "gsmdecode") in
  Alcotest.(check int) "identical cycles" plain.Run.cycles faulted.Run.cycles;
  Alcotest.(check int) "no faults" 0 faulted.Run.stats.Stats.faults_injected

(* --- Graceful degradation ------------------------------------------------- *)

let test_degradation_ladder () =
  (* A fault threshold low enough to trip forces the runner down the
     ladder; the bottom rung clears the threshold, so the final attempt
     completes and still verifies. *)
  let fault = Fault.uniform ~seed:9 ~degrade_threshold:5 ~rate:0.05 () in
  let r = Run.run_resilient ~tweak:(with_fault fault) ~n_cores:4 (build "cjpeg") in
  Alcotest.(check bool) "degraded at least once" true r.Run.degraded;
  Alcotest.(check bool) "multiple attempts recorded" true
    (List.length r.Run.attempts >= 2);
  (match r.Run.attempts with
  | first :: _ ->
    Alcotest.(check bool) "ladder starts at full" true (first.Run.a_level = Fault.Full)
  | [] -> Alcotest.fail "no attempts recorded");
  let last = List.nth r.Run.attempts (List.length r.Run.attempts - 1) in
  Alcotest.(check bool) "final rung is safer than full" true
    (last.Run.a_level <> Fault.Full);
  Alcotest.(check bool) "final attempt verified" true r.Run.final.Run.verified

let test_no_degradation_below_threshold () =
  (* With a sky-high threshold the first rung absorbs every fault. *)
  let fault = Fault.uniform ~seed:9 ~degrade_threshold:1_000_000 ~rate:1e-3 () in
  let r = Run.run_resilient ~tweak:(with_fault fault) ~n_cores:4 (build "cjpeg") in
  Alcotest.(check bool) "no degradation" false r.Run.degraded;
  Alcotest.(check int) "single attempt" 1 (List.length r.Run.attempts);
  Alcotest.(check bool) "verified" true r.Run.final.Run.verified

let () =
  Alcotest.run "fault"
    [
      ( "config",
        [
          Alcotest.test_case "helpers" `Quick test_config_helpers;
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "degradation rungs" `Quick test_degradation_rungs;
        ] );
      ("ecc", [ Alcotest.test_case "correct/mask/scrub" `Quick test_ecc_memory ]);
      ( "recovery",
        [
          Alcotest.test_case "network faults" `Quick test_network_faults_recovered;
          Alcotest.test_case "memory faults" `Quick test_memory_faults_recovered;
          Alcotest.test_case "spurious TM aborts" `Quick test_spurious_aborts_recovered;
          Alcotest.test_case "stall faults" `Quick test_stall_faults_recovered;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "disabled is free" `Quick test_disabled_is_identical;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "ladder walks down" `Quick test_degradation_ladder;
          Alcotest.test_case "threshold respected" `Quick
            test_no_degradation_below_threshold;
        ] );
    ]
