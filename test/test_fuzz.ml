(* Differential fuzzer harness: generator determinism and soundness,
   replay of the checked-in corpus over the full strategy x core matrix,
   and self-tests that prove each divergence class is actually caught —
   a deliberately miscompiled artifact must be flagged AND shrink to a
   small reproducer, otherwise a silent harness bug could make every
   campaign vacuously green. *)

module Gen = Voltron_gen.Gen
module Campaign = Voltron_gen.Campaign
module Shrink = Voltron_gen.Shrink
module Coherence = Voltron_mem.Coherence
module Run = Voltron.Run
module Frontend = Voltron_lang.Frontend
module Parser = Voltron_lang.Parser
module Driver = Voltron_compiler.Driver
module Check = Voltron_check.Check

(* --- Generator ------------------------------------------------------------------- *)

let test_determinism () =
  List.iter
    (fun seed ->
      let a = Gen.render (Gen.program ~seed ()) in
      let b = Gen.render (Gen.program ~seed ()) in
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproduces" seed)
        a b)
    [ 1; 7; 42; 182 ];
  let a = Gen.render (Gen.program ~seed:7 ()) in
  let b = Gen.render (Gen.program ~seed:8 ()) in
  Alcotest.(check bool) "distinct seeds differ" true (a <> b)

(* Every generated program must survive render -> re-parse -> elaborate:
   the generator is correct by construction, never by rejection. *)
let test_generated_elaborate () =
  for seed = 1 to 30 do
    let p = Gen.program ~seed () in
    match Frontend.parse_string ~name:p.Voltron_lang.Ast.prog_name (Gen.render p) with
    | _ -> ()
    | exception e ->
      Alcotest.failf "seed %d does not elaborate: %s" seed
        (Option.value ~default:(Printexc.to_string e) (Frontend.error_to_string e))
  done

(* --- Corpus replay --------------------------------------------------------------- *)

let corpus_dir () =
  (* dune runtest runs in the test directory's build dir; dune exec from
     the workspace root. *)
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".vc")
  |> List.sort compare
  |> List.map (Filename.concat dir)

(* Every checked-in program — fixed-seed generator output and shrunk
   regression reproducers alike — must pass the whole contract: oracle
   checksum agreement, clean checker, fast-forward cycle equality,
   watchdog-free termination, over all strategies, core counts up to 16
   and both coherence backends (each cell simulates snoop and directory,
   fast-forward on and off — the coherence axis rides every replay). *)
let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus present" true (List.length files >= 10);
  List.iter
    (fun file ->
      let hir = Frontend.parse_file file in
      let d =
        Run.differential ~cores:[ 2; 4; 8; 16 ]
          ~coherence:[ Coherence.Snoop; Coherence.Directory ] hir
      in
      match d.Run.diff_divergences with
      | [] -> ()
      | div :: _ ->
        Alcotest.failf "%s diverges: %s" file (Run.divergence_to_string div))
    files

(* A fixed slice of the corpus replayed with the runtime sanitizer in
   abort mode: every run must finish clean — the dynamic invariants hold
   on real (and shrunk-reproducer) programs, not just the workload
   suite. *)
let test_corpus_replay_sanitized () =
  let files = corpus_files () in
  Alcotest.(check bool) "at least three corpus programs" true
    (List.length files >= 3);
  List.iteri
    (fun i file ->
      if i < 3 then begin
        let hir = Frontend.parse_file file in
        let d =
          Run.differential ~cores:[ 2; 4 ]
            ~sanitize:Voltron_sanity.Sanity.Abort hir
        in
        match d.Run.diff_divergences with
        | [] -> ()
        | div :: _ ->
          Alcotest.failf "%s diverges under the sanitizer: %s" file
            (Run.divergence_to_string div)
      end)
    files

(* --- Injected divergences: the harness catches what it claims to ----------------- *)

let first_class ?strategies ?cores ?coherence ?miscompile ?ff_tweak ?dir_tweak p =
  let failure, _, _ =
    Campaign.first_failure ?strategies ?cores ?coherence ?miscompile ?ff_tweak
      ?dir_tweak p
  in
  Option.map (fun (cls, _, _) -> cls) failure

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let seed_ast = Gen.program ~seed:1 ()

let test_catches_checksum () =
  let miscompile c =
    { c with Driver.oracle_checksum = c.Driver.oracle_checksum + 1 }
  in
  Alcotest.(check (option string))
    "bumped oracle checksum is flagged" (Some "checksum")
    (first_class ~strategies:[ `Tlp ] ~cores:[ 2 ] ~miscompile seed_ast)

let test_catches_checker () =
  let miscompile c =
    let diag =
      { Check.d_severity = Check.Error; d_loc = None;
        d_kind = Check.Malformed "injected by test_fuzz" }
    in
    { c with Driver.check_diags = diag :: c.Driver.check_diags }
  in
  Alcotest.(check (option string))
    "injected checker error is flagged" (Some "checker")
    (first_class ~strategies:[ `Tlp ] ~cores:[ 2 ] ~miscompile seed_ast)

let test_catches_ff_divergence () =
  (* Perturb only the per-cycle reference machine: the fast-forward run
     and the reference run then disagree on cycles, which must surface as
     an ff-cycles divergence (fast-forward is architecturally invisible,
     so any on/off disagreement is a simulator bug). *)
  let ff_tweak (c : Voltron_machine.Config.t) =
    { c with cache = { c.cache with Voltron_mem.Coherence.lat_l1 = c.cache.Voltron_mem.Coherence.lat_l1 + 3 } }
  in
  Alcotest.(check (option string))
    "reference-only latency change is flagged" (Some "ff-cycles")
    (first_class ~strategies:[ `Tlp ] ~cores:[ 2 ] ~ff_tweak seed_ast)

(* A directory-only pathology (here: its simulations stop dead almost
   immediately) must surface as divergences whose cases all name the
   directory backend, while the snoop half of every cell stays green —
   proof the coherence axis is wired into the rig, not just along for
   the ride. *)
let dir_sabotage (c : Voltron_machine.Config.t) =
  { c with Voltron_machine.Config.max_cycles = 10 }

let test_catches_directory_only () =
  let hir =
    Frontend.parse_string ~name:seed_ast.Voltron_lang.Ast.prog_name
      (Gen.render seed_ast)
  in
  let d =
    Run.differential ~strategies:[ `Tlp ] ~cores:[ 2 ] ~dir_tweak:dir_sabotage
      hir
  in
  Alcotest.(check bool) "sabotage is flagged" true
    (d.Run.diff_divergences <> []);
  List.iter
    (fun dv ->
      (match dv with
      | Run.Non_completion { nc_case; _ } ->
        Alcotest.(check bool) "case names the directory backend" true
          (nc_case.Run.d_coherence = Coherence.Directory)
      | dv ->
        Alcotest.failf "unexpected divergence class %s"
          (Run.divergence_class dv));
      Alcotest.(check bool) "transcript names the backend" true
        (contains (Run.divergence_to_string dv) "directory"))
    d.Run.diff_divergences

let test_clean_program_has_no_finding () =
  Alcotest.(check (option string))
    "seed 1 passes the full matrix" None (first_class seed_ast)

(* --- Shrinking ------------------------------------------------------------------- *)

(* The acceptance bar from the issue: a deliberately injected miscompile
   must shrink below 25 source lines. The injected checksum bump fails on
   any completing program, so the shrinker should reach a near-minimal
   one. *)
let test_shrinks_injected_miscompile () =
  let miscompile c =
    { c with Driver.oracle_checksum = c.Driver.oracle_checksum + 1 }
  in
  let case = { Run.d_strategy = `Tlp; d_cores = 2; d_coherence = Coherence.Snoop } in
  let small =
    Campaign.minimize ~strategies:[ `Tlp ] ~cores:[ 2 ] ~miscompile
      ~cls:"checksum" ~case seed_ast
  in
  let lines = Gen.source_lines small in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to %d lines (< 25)" lines)
    true (lines < 25);
  (* And the shrunk program still reproduces the class. *)
  Alcotest.(check (option string))
    "shrunk program still fails" (Some "checksum")
    (first_class ~strategies:[ `Tlp ] ~cores:[ 2 ] ~miscompile small)

(* Same bar for the coherence axis: the injected directory-only failure
   must shrink below 25 lines with both the class and the backend pinned
   — the minimizer re-runs only the diverging directory cell. *)
let test_shrinks_directory_miscompile () =
  let case =
    { Run.d_strategy = `Tlp; d_cores = 2; d_coherence = Coherence.Directory }
  in
  let small =
    Campaign.minimize ~strategies:[ `Tlp ] ~cores:[ 2 ] ~dir_tweak:dir_sabotage
      ~cls:"non-completion" ~case seed_ast
  in
  let lines = Gen.source_lines small in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to %d lines (< 25)" lines)
    true (lines < 25);
  Alcotest.(check (option string))
    "shrunk program still fails on the directory axis" (Some "non-completion")
    (first_class ~strategies:[ `Tlp ] ~cores:[ 2 ]
       ~coherence:[ Coherence.Directory ] ~dir_tweak:dir_sabotage small)

let test_shrink_preserves_keep () =
  (* Structural sanity on the shrinker itself: keep = "has at least one
     region" must hold at every accepted step, and the fixpoint is small. *)
  let p = Gen.program ~seed:5 () in
  let keep (q : Voltron_lang.Ast.program) = q.Voltron_lang.Ast.regions <> [] in
  let small = Shrink.shrink ~keep p in
  Alcotest.(check bool) "keep holds at fixpoint" true (keep small);
  Alcotest.(check bool) "shrunk not larger" true
    (Gen.source_lines small <= Gen.source_lines p)

(* --- Reproducer files ------------------------------------------------------------ *)

let test_write_reproducer_reparses () =
  let dir = Filename.temp_file "voltron_corpus" "" in
  Sys.remove dir;
  let finding =
    {
      Campaign.f_campaign_seed = 99;
      f_index = 3;
      f_seed = 4242;
      f_class = "checksum";
      f_case = Some { Run.d_strategy = `Hybrid; d_cores = 4; d_coherence = Coherence.Directory };
      f_detail = "synthetic finding for reproducer round-trip";
      f_original = seed_ast;
      f_minimized = seed_ast;
    }
  in
  let path = Campaign.write_reproducer ~dir finding in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "named by campaign seed, index and class" true
    (Filename.basename path = "fuzz_s99_i3_checksum.vc");
  (* The triage header must be comments only: the file re-parses. *)
  match Frontend.parse_file path with
  | _ -> Sys.remove path; Unix.rmdir dir
  | exception e ->
    Alcotest.failf "reproducer does not re-parse: %s" (Printexc.to_string e)

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "generated programs elaborate" `Quick
            test_generated_elaborate;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "replay full matrix" `Slow test_corpus_replay;
          Alcotest.test_case "sanitized replay" `Slow test_corpus_replay_sanitized;
        ] );
      ( "injection",
        [
          Alcotest.test_case "checksum divergence caught" `Quick
            test_catches_checksum;
          Alcotest.test_case "checker divergence caught" `Quick
            test_catches_checker;
          Alcotest.test_case "ff divergence caught" `Quick
            test_catches_ff_divergence;
          Alcotest.test_case "directory-only divergence caught" `Quick
            test_catches_directory_only;
          Alcotest.test_case "clean program passes" `Quick
            test_clean_program_has_no_finding;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "injected miscompile shrinks small" `Slow
            test_shrinks_injected_miscompile;
          Alcotest.test_case "directory miscompile shrinks small" `Slow
            test_shrinks_directory_miscompile;
          Alcotest.test_case "keep preserved" `Quick test_shrink_preserves_keep;
        ] );
      ( "reproducer",
        [
          Alcotest.test_case "write and re-parse" `Quick
            test_write_reproducer_reparses;
        ] );
    ]
