(* Machine simulator tests: hand-assembled programs exercising each
   execution mechanism — single-core arithmetic and control flow, queue-mode
   SEND/RECV, SPAWN/SLEEP threads, coupled-mode lock-step with PUT/GET and
   BCAST/GETB, mode switching, and TM rounds with and without conflicts. *)

module Inst = Voltron_isa.Inst
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Config = Voltron_machine.Config
module Machine = Voltron_machine.Machine
module Stats = Voltron_machine.Stats

let reg r = Inst.Reg r
let imm i = Inst.Imm i

(* Assemble a one-op-per-bundle image from (label option, inst) rows. *)
let assemble rows =
  let b = Image.builder () in
  List.iter
    (fun (label, ops) ->
      (match label with Some l -> Image.place_label b l | None -> ());
      Image.emit b ops)
    rows;
  Image.finish b

let build_machine ?(n_cores = 1) ?(mem_size = 1024) ?(mem_init = []) images =
  let cfg = Config.default ~n_cores in
  let prog = Program.make ~images ~mem_size ~mem_init in
  Machine.create cfg prog

let run_ok machine =
  let result = Machine.run machine in
  (match result.Machine.outcome with
  | Machine.Finished -> ()
  | Machine.Out_of_cycles -> Alcotest.fail "simulation ran out of cycles"
  | Machine.Deadlock d ->
    Alcotest.fail ("deadlock: " ^ Machine.diagnosis_to_string d)
  | Machine.Fault_limit d ->
    Alcotest.fail ("fault limit: " ^ Machine.diagnosis_to_string d)
  | Machine.Stopped d ->
    Alcotest.fail ("stopped: " ^ Machine.diagnosis_to_string d));
  result

let test_single_core_arith () =
  (* r1 = 2 + 3; r2 = r1 * 4; mem[10] = r2; halt *)
  let image =
    assemble
      [
        (None, [ Inst.Alu { op = Inst.Add; dst = 1; src1 = imm 2; src2 = imm 3 } ]);
        (None, [ Inst.Alu { op = Inst.Mul; dst = 2; src1 = reg 1; src2 = imm 4 } ]);
        (None, [ Inst.Store { base = imm 10; offset = imm 0; src = reg 2 } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let m = build_machine [| image |] in
  let _ = run_ok m in
  Alcotest.(check int) "r2" 20 (Machine.reg m ~core:0 2);
  Alcotest.(check int) "mem[10]" 20
    (Voltron_mem.Memory.read (Machine.memory m) 10)

let test_loop_sum () =
  (* Sum 0..9 with a backward branch: r1 = i, r2 = acc. *)
  let image =
    assemble
      [
        (None, [ Inst.Mov { dst = 1; src = imm 0 } ]);
        (None, [ Inst.Mov { dst = 2; src = imm 0 } ]);
        (Some "loop", [ Inst.Alu { op = Inst.Add; dst = 2; src1 = reg 2; src2 = reg 1 } ]);
        (None, [ Inst.Alu { op = Inst.Add; dst = 1; src1 = reg 1; src2 = imm 1 } ]);
        (None, [ Inst.Pbr { btr = 0; target = "loop" } ]);
        (None, [ Inst.Cmp { op = Inst.Lt; dst = 3; src1 = reg 1; src2 = imm 10 } ]);
        (None, [ Inst.Br { btr = 0; pred = Some (reg 3); invert = false } ]);
        (None, [ Inst.Store { base = imm 0; offset = imm 0; src = reg 2 } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let m = build_machine [| image |] in
  let _ = run_ok m in
  Alcotest.(check int) "sum" 45 (Voltron_mem.Memory.read (Machine.memory m) 0)

let test_load_latency_interlock () =
  (* A load's consumer must observe the loaded value despite the miss. *)
  let image =
    assemble
      [
        (None, [ Inst.Load { dst = 1; base = imm 100; offset = imm 0 } ]);
        (None, [ Inst.Alu { op = Inst.Add; dst = 2; src1 = reg 1; src2 = imm 1 } ]);
        (None, [ Inst.Store { base = imm 101; offset = imm 0; src = reg 2 } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let m = build_machine ~mem_init:[ (100, 41) ] [| image |] in
  let _ = run_ok m in
  Alcotest.(check int) "mem[101]" 42
    (Voltron_mem.Memory.read (Machine.memory m) 101);
  (* The first load misses in the cold cache, so some D-stall happened. *)
  let stats = Machine.stats m in
  Alcotest.(check bool) "d-stalls" true ((Stats.core stats 0).Stats.d_stall > 0)

let test_spawn_send_recv () =
  (* Core 0 spawns core 1; core 1 computes 7*6 and sends it back. *)
  let master =
    assemble
      [
        (None, [ Inst.Spawn { target = 1; entry = "worker" } ]);
        (None, [ Inst.Recv { sender = 1; dst = 5; kind = Inst.Rv_data } ]);
        (None, [ Inst.Store { base = imm 0; offset = imm 0; src = reg 5 } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let worker =
    assemble
      [
        (Some "worker", [ Inst.Alu { op = Inst.Mul; dst = 1; src1 = imm 7; src2 = imm 6 } ]);
        (None, [ Inst.Send { target = 0; src = reg 1 } ]);
        (None, [ Inst.Sleep ]);
      ]
  in
  let m = build_machine ~n_cores:2 [| master; worker |] in
  let _ = run_ok m in
  Alcotest.(check int) "mem[0]" 42 (Voltron_mem.Memory.read (Machine.memory m) 0);
  let stats = Machine.stats m in
  Alcotest.(check int) "spawns" 1 stats.Stats.spawns

let test_recv_stall_classification () =
  (* Core 0 waits a long time for a value: recv-data stalls accumulate. *)
  let master =
    assemble
      [
        (None, [ Inst.Spawn { target = 1; entry = "worker" } ]);
        (None, [ Inst.Recv { sender = 1; dst = 5; kind = Inst.Rv_data } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  (* Worker burns ~36 cycles in divisions before sending. *)
  let burn =
    List.init 3 (fun i ->
        (None, [ Inst.Alu { op = Inst.Div; dst = i + 1; src1 = imm 100; src2 = imm 3 } ]))
  in
  let worker =
    assemble
      ((Some "worker", [ Inst.Mov { dst = 0; src = imm 9 } ])
       :: burn
      @ [
          (None, [ Inst.Alu { op = Inst.Add; dst = 4; src1 = reg 3; src2 = reg 0 } ]);
          (None, [ Inst.Send { target = 0; src = reg 4 } ]);
          (None, [ Inst.Sleep ]);
        ])
  in
  let m = build_machine ~n_cores:2 [| master; worker |] in
  let _ = run_ok m in
  let stats = Machine.stats m in
  Alcotest.(check bool) "recv-data stalls" true
    ((Stats.core stats 0).Stats.recv_data_stall > 5)

let switch m = [ Inst.Mode_switch m ]

let test_coupled_put_get () =
  (* Both cores enter coupled mode; core 0 PUTs a value east in the same
     cycle core 1 GETs it from the west; then both leave coupled mode. *)
  let master =
    assemble
      [
        (None, [ Inst.Spawn { target = 1; entry = "enter" } ]);
        (None, switch Inst.Coupled);
        (None, [ Inst.Mov { dst = 1; src = imm 33 } ]);
        (None, [ Inst.Put { dir = Inst.East; src = reg 1 } ]);
        (None, [ Inst.Nop ]);
        (None, switch Inst.Decoupled);
        (None, [ Inst.Recv { sender = 1; dst = 2; kind = Inst.Rv_data } ]);
        (None, [ Inst.Store { base = imm 0; offset = imm 0; src = reg 2 } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let worker =
    assemble
      [
        (Some "enter", switch Inst.Coupled);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Get { dir = Inst.West; dst = 7 } ]);
        (None, [ Inst.Alu { op = Inst.Add; dst = 8; src1 = reg 7; src2 = imm 1 } ]);
        (None, switch Inst.Decoupled);
        (None, [ Inst.Send { target = 0; src = reg 8 } ]);
        (None, [ Inst.Sleep ]);
      ]
  in
  let m = build_machine ~n_cores:2 [| master; worker |] in
  let _ = run_ok m in
  Alcotest.(check int) "mem[0]" 34 (Voltron_mem.Memory.read (Machine.memory m) 0);
  let stats = Machine.stats m in
  Alcotest.(check bool) "coupled cycles seen" true (stats.Stats.coupled_cycles > 0);
  Alcotest.(check int) "two mode switches" 2 stats.Stats.mode_switches

let test_coupled_bcast_getb () =
  (* Core 0 broadcasts a branch condition; core 1 GETBs it one cycle later
     (1 hop), then both branch in the same cycle to "exit". *)
  let master =
    assemble
      [
        (None, [ Inst.Spawn { target = 1; entry = "enter" } ]);
        (None, switch Inst.Coupled);
        (None, [ Inst.Cmp { op = Inst.Lt; dst = 1; src1 = imm 3; src2 = imm 5 } ]);
        (None, [ Inst.Pbr { btr = 0; target = "exit0" } ]);
        (None, [ Inst.Bcast { src = reg 1 } ]);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Br { btr = 0; pred = Some (reg 1); invert = false } ]);
        (None, [ Inst.Mov { dst = 9; src = imm 111 } ]);
        (Some "exit0", switch Inst.Decoupled);
        (None, [ Inst.Recv { sender = 1; dst = 2; kind = Inst.Rv_data } ]);
        (None, [ Inst.Store { base = imm 0; offset = imm 0; src = reg 2 } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let worker =
    assemble
      [
        (Some "enter", switch Inst.Coupled);
        (None, [ Inst.Mov { dst = 3; src = imm 5 } ]);
        (None, [ Inst.Pbr { btr = 0; target = "exit1" } ]);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Getb { dst = 4 } ]);
        (None, [ Inst.Br { btr = 0; pred = Some (reg 4); invert = false } ]);
        (None, [ Inst.Mov { dst = 3; src = imm 999 } ]);
        (Some "exit1", switch Inst.Decoupled);
        (None, [ Inst.Send { target = 0; src = reg 3 } ]);
        (None, [ Inst.Sleep ]);
      ]
  in
  let m = build_machine ~n_cores:2 [| master; worker |] in
  let _ = run_ok m in
  (* Both cores took their branches: core 1 still has 5, not 999. *)
  Alcotest.(check int) "mem[0]" 5 (Voltron_mem.Memory.read (Machine.memory m) 0)

let test_tm_commit_no_conflict () =
  (* Two disjoint transactional chunks commit cleanly. *)
  let master =
    assemble
      [
        (None, [ Inst.Spawn { target = 1; entry = "chunk1" } ]);
        (None, [ Inst.Tm_begin ]);
        (None, [ Inst.Store { base = imm 0; offset = imm 0; src = imm 10 } ]);
        (None, [ Inst.Tm_commit ]);
        (None, [ Inst.Recv { sender = 1; dst = 1; kind = Inst.Rv_data } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let worker =
    assemble
      [
        (Some "chunk1", [ Inst.Tm_begin ]);
        (None, [ Inst.Store { base = imm 1; offset = imm 0; src = imm 20 } ]);
        (None, [ Inst.Tm_commit ]);
        (None, [ Inst.Send { target = 0; src = imm 1 } ]);
        (None, [ Inst.Sleep ]);
      ]
  in
  let m = build_machine ~n_cores:2 [| master; worker |] in
  let _ = run_ok m in
  let mem = Machine.memory m in
  Alcotest.(check int) "mem[0]" 10 (Voltron_mem.Memory.read mem 0);
  Alcotest.(check int) "mem[1]" 20 (Voltron_mem.Memory.read mem 1);
  let stats = Machine.stats m in
  Alcotest.(check int) "one round" 1 stats.Stats.tm_rounds;
  Alcotest.(check int) "no conflict" 0 stats.Stats.tm_conflicts

let test_tm_conflict_rollback () =
  (* Core 1 reads mem[0], which core 0 (logically earlier) writes: core 1
     must abort, re-execute serially, and read the committed value. *)
  let master =
    assemble
      [
        (None, [ Inst.Spawn { target = 1; entry = "chunk1" } ]);
        (None, [ Inst.Tm_begin ]);
        (None, [ Inst.Store { base = imm 0; offset = imm 0; src = imm 77 } ]);
        (None, [ Inst.Tm_commit ]);
        (None, [ Inst.Recv { sender = 1; dst = 1; kind = Inst.Rv_data } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let worker =
    assemble
      [
        (Some "chunk1", [ Inst.Tm_begin ]);
        (None, [ Inst.Load { dst = 2; base = imm 0; offset = imm 0 } ]);
        (None, [ Inst.Alu { op = Inst.Add; dst = 3; src1 = reg 2; src2 = imm 1 } ]);
        (None, [ Inst.Store { base = imm 1; offset = imm 0; src = reg 3 } ]);
        (None, [ Inst.Tm_commit ]);
        (None, [ Inst.Send { target = 0; src = imm 1 } ]);
        (None, [ Inst.Sleep ]);
      ]
  in
  let m = build_machine ~n_cores:2 [| master; worker |] in
  let _ = run_ok m in
  let mem = Machine.memory m in
  let stats = Machine.stats m in
  Alcotest.(check int) "conflicts" 1 stats.Stats.tm_conflicts;
  Alcotest.(check int) "mem[0]" 77 (Voltron_mem.Memory.read mem 0);
  Alcotest.(check int) "mem[1] saw committed value" 78
    (Voltron_mem.Memory.read mem 1)

let test_deadlock_detected () =
  (* A RECV that can never be satisfied must hit the watchdog, not hang —
     and the diagnosis must name the blocked core and what it waits on. *)
  let image =
    assemble [ (None, [ Inst.Recv { sender = 0; dst = 1; kind = Inst.Rv_data } ]) ]
  in
  let cfg = { (Config.default ~n_cores:1) with Config.watchdog = 500 } in
  let prog = Program.make ~images:[| image |] ~mem_size:64 ~mem_init:[] in
  let m = Machine.create cfg prog in
  match (Machine.run m).Machine.outcome with
  | Machine.Deadlock d ->
    Alcotest.(check bool) "core 0 waits on a RECV from core 0" true
      (match d.Machine.d_cores.(0).Machine.d_wait with
      | Some (Machine.W_recv { sender = 0; _ }) -> true
      | _ -> false);
    Alcotest.(check bool) "blame edge names the missing sender" true
      (d.Machine.d_blame = Some (0, 0));
    (* The rendering is self-contained enough to debug from. *)
    let s = Machine.diagnosis_to_string d in
    let contains sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "diagnosis mentions RECV" true (contains "RECV")
  | Machine.Finished | Machine.Out_of_cycles | Machine.Fault_limit _
  | Machine.Stopped _ ->
    Alcotest.fail "expected deadlock detection"

let test_deadlock_get_no_put () =
  (* Coupled mode: core 1 GETs from the west but core 0 never PUTs; core 0
     meanwhile waits at the mode barrier. Both edges of the cycle must show
     up in the diagnosis. *)
  let c0 =
    assemble
      [
        (None, [ Inst.Spawn { target = 1; entry = "w" } ]);
        (None, switch Inst.Coupled);
        (None, [ Inst.Nop ]);
        (None, switch Inst.Decoupled);
        (None, [ Inst.Halt ]);
      ]
  in
  let c1 =
    assemble
      [
        (Some "w", switch Inst.Coupled);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Get { dir = Inst.West; dst = 5 } ]);
        (None, switch Inst.Decoupled);
        (None, [ Inst.Sleep ]);
      ]
  in
  let cfg = { (Config.default ~n_cores:2) with Config.watchdog = 500 } in
  let prog = Program.make ~images:[| c0; c1 |] ~mem_size:64 ~mem_init:[] in
  let m = Machine.create cfg prog in
  match (Machine.run m).Machine.outcome with
  | Machine.Deadlock d ->
    Alcotest.(check bool) "core 1 stuck on the empty west latch" true
      (match d.Machine.d_cores.(1).Machine.d_wait with
      | Some (Machine.W_get_latch Inst.West) -> true
      | _ -> false);
    Alcotest.(check bool) "blame edge crosses the pair" true
      (d.Machine.d_blame = Some (0, 1) || d.Machine.d_blame = Some (1, 0))
  | Machine.Finished | Machine.Out_of_cycles | Machine.Fault_limit _
  | Machine.Stopped _ ->
    Alcotest.fail "expected deadlock detection"

let test_deadlock_tm_commit () =
  (* In-order chunk commit needs every core at TM_COMMIT; core 1 is asleep,
     so core 0's round can never resolve. The diagnosis must blame the
     missing participant. *)
  let c0 =
    assemble
      [
        (None, [ Inst.Tm_begin ]);
        (None, [ Inst.Store { base = imm 0; offset = imm 0; src = imm 1 } ]);
        (None, [ Inst.Tm_commit ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let c1 = assemble [ (None, [ Inst.Sleep ]) ] in
  let cfg = { (Config.default ~n_cores:2) with Config.watchdog = 500 } in
  let prog = Program.make ~images:[| c0; c1 |] ~mem_size:64 ~mem_init:[] in
  let m = Machine.create cfg prog in
  match (Machine.run m).Machine.outcome with
  | Machine.Deadlock d ->
    Alcotest.(check bool) "core 0 waits for the commit round" true
      (d.Machine.d_cores.(0).Machine.d_wait = Some Machine.W_commit);
    Alcotest.(check bool) "blame points at the absent core 1" true
      (d.Machine.d_blame = Some (0, 1))
  | Machine.Finished | Machine.Out_of_cycles | Machine.Fault_limit _
  | Machine.Stopped _ ->
    Alcotest.fail "expected deadlock detection"

(* --- Tracing ------------------------------------------------------------------ *)

module Trace = Voltron_machine.Trace

let test_trace_events () =
  let master =
    assemble
      [
        (Some "top", [ Inst.Spawn { target = 1; entry = "worker" } ]);
        (None, [ Inst.Recv { sender = 1; dst = 5; kind = Inst.Rv_data } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let worker =
    assemble
      [
        (Some "worker", [ Inst.Mov { dst = 1; src = imm 3 } ]);
        (None, [ Inst.Send { target = 0; src = reg 1 } ]);
        (None, [ Inst.Sleep ]);
      ]
  in
  let m = build_machine ~n_cores:2 [| master; worker |] in
  let tracer = Trace.create () in
  Machine.set_tracer m tracer;
  let _ = run_ok m in
  let events = Trace.events tracer in
  let has p = List.exists p events in
  Alcotest.(check bool) "spawn traced" true
    (has (function Trace.Spawned { by = 0; target = 1; _ } -> true | _ -> false));
  Alcotest.(check bool) "issues traced" true
    (has (function Trace.Issue _ -> true | _ -> false));
  Alcotest.(check bool) "recv stall traced" true
    (has (function
      | Trace.Stall { kind = Voltron_machine.Stats.Recv_data; _ } -> true
      | _ -> false));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tracer);
  (* Hotspots attribute issues to the right labels. *)
  let prog =
    Program.make ~images:[| master; worker |] ~mem_size:1024 ~mem_init:[]
  in
  let spots = Trace.hotspots tracer prog in
  Alcotest.(check bool) "top label hot" true
    (List.exists
       (fun h -> h.Trace.hs_label = "top" && h.Trace.hs_issues >= 3)
       spots);
  Alcotest.(check bool) "worker label hot" true
    (List.exists
       (fun h -> h.Trace.hs_core = 1 && h.Trace.hs_label = "worker")
       spots)

let test_trace_limit () =
  let image =
    assemble
      [
        (None, [ Inst.Mov { dst = 1; src = imm 0 } ]);
        (Some "loop", [ Inst.Alu { op = Inst.Add; dst = 1; src1 = reg 1; src2 = imm 1 } ]);
        (None, [ Inst.Pbr { btr = 0; target = "loop" } ]);
        (None, [ Inst.Cmp { op = Inst.Lt; dst = 2; src1 = reg 1; src2 = imm 100 } ]);
        (None, [ Inst.Br { btr = 0; pred = Some (reg 2); invert = false } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let m = build_machine [| image |] in
  let tracer = Trace.create ~limit:10 () in
  Machine.set_tracer m tracer;
  let _ = run_ok m in
  Alcotest.(check int) "stored capped" 10 (List.length (Trace.events tracer));
  Alcotest.(check bool) "dropped counted" true (Trace.dropped tracer > 0)

(* --- More machine corner cases -------------------------------------------------- *)

let test_multi_hop_relay () =
  (* 4-core mesh: move a value 0 -> 1 -> 3 with a same-cycle relay chain
     (paper 3.1: multi-hop direct-mode moves via PUT/GET sequences). *)
  let switch m = [ Inst.Mode_switch m ] in
  let c0 =
    assemble
      [
        (None, [ Inst.Spawn { target = 1; entry = "w1" } ]);
        (None, [ Inst.Spawn { target = 2; entry = "w2" } ]);
        (None, [ Inst.Spawn { target = 3; entry = "w3" } ]);
        (None, switch Inst.Coupled);
        (None, [ Inst.Mov { dst = 1; src = imm 55 } ]);
        (None, [ Inst.Put { dir = Inst.East; src = reg 1 } ]);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Nop ]);
        (None, switch Inst.Decoupled);
        (None, [ Inst.Recv { sender = 3; dst = 2; kind = Inst.Rv_data } ]);
        (None, [ Inst.Store { base = imm 0; offset = imm 0; src = reg 2 } ]);
        (None, [ Inst.Halt ]);
      ]
  in
  let c1 =
    assemble
      [
        (Some "w1", switch Inst.Coupled);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Get { dir = Inst.West; dst = 5 } ]);
        (None, [ Inst.Put { dir = Inst.South; src = reg 5 } ]);
        (None, [ Inst.Nop ]);
        (None, switch Inst.Decoupled);
        (None, [ Inst.Sleep ]);
      ]
  in
  let c2 =
    assemble
      [
        (Some "w2", switch Inst.Coupled);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Nop ]);
        (None, switch Inst.Decoupled);
        (None, [ Inst.Sleep ]);
      ]
  in
  let c3 =
    assemble
      [
        (Some "w3", switch Inst.Coupled);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Nop ]);
        (None, [ Inst.Get { dir = Inst.North; dst = 7 } ]);
        (None, [ Inst.Alu { op = Inst.Add; dst = 8; src1 = reg 7; src2 = imm 1 } ]);
        (None, switch Inst.Decoupled);
        (None, [ Inst.Send { target = 0; src = reg 8 } ]);
        (None, [ Inst.Sleep ]);
      ]
  in
  let m = build_machine ~n_cores:4 [| c0; c1; c2; c3 |] in
  let _ = run_ok m in
  Alcotest.(check int) "relayed across two hops" 56
    (Voltron_mem.Memory.read (Machine.memory m) 0)

let test_lockstep_group_stall () =
  (* In coupled mode a cache miss on one core freezes the other: both end
     with identical busy counts even though only core 0 touches memory. *)
  let switch m = [ Inst.Mode_switch m ] in
  let body0 =
    List.init 6 (fun i ->
        (None, [ Inst.Load { dst = i + 1; base = imm (i * 64); offset = imm 0 } ]))
  in
  let c0 =
    assemble
      ([ (None, [ Inst.Spawn { target = 1; entry = "w" } ]); (None, switch Inst.Coupled) ]
      @ body0
      @ [ (None, switch Inst.Decoupled); (None, [ Inst.Halt ]) ])
  in
  let body1 = List.init 6 (fun i -> (None, [ Inst.Mov { dst = i + 1; src = imm i } ])) in
  let c1 =
    assemble
      ([ (Some "w", switch Inst.Coupled) ]
      @ body1
      @ [ (None, switch Inst.Decoupled); (None, [ Inst.Sleep ]) ])
  in
  let m = build_machine ~n_cores:2 ~mem_size:1024 [| c0; c1 |] in
  let _ = run_ok m in
  let st = Machine.stats m in
  let b0 = (Stats.core st 0).Stats.busy and b1 = (Stats.core st 1).Stats.busy in
  Alcotest.(check bool) "lock-step busy within 2 cycles" true (abs (b0 - b1) <= 2);
  Alcotest.(check bool) "partner inherits D-stalls" true
    ((Stats.core st 1).Stats.d_stall > 100)

let test_send_backpressure () =
  (* With channel capacity 1, back-to-back sends stall until drained. *)
  let c0 =
    assemble
      ([ (None, [ Inst.Spawn { target = 1; entry = "w" } ]) ]
      @ List.init 4 (fun i -> (None, [ Inst.Send { target = 1; src = imm i } ]))
      @ [
          (None, [ Inst.Recv { sender = 1; dst = 9; kind = Inst.Rv_sync } ]);
          (None, [ Inst.Halt ]);
        ])
  in
  let c1 =
    assemble
      ([ (Some "w", [ Inst.Alu { op = Inst.Div; dst = 1; src1 = imm 99; src2 = imm 7 } ]) ]
      @ List.init 4 (fun i ->
            (None, [ Inst.Recv { sender = 0; dst = i + 2; kind = Inst.Rv_data } ]))
      @ [
          (None, [ Inst.Store { base = imm 0; offset = imm 0; src = reg 5 } ]);
          (None, [ Inst.Send { target = 0; src = imm 1 } ]);
          (None, [ Inst.Sleep ]);
        ])
  in
  let cfg = { (Config.default ~n_cores:2) with Config.net_capacity = 1 } in
  let prog = Program.make ~images:[| c0; c1 |] ~mem_size:64 ~mem_init:[] in
  let m = Machine.create cfg prog in
  (match (Machine.run m).Machine.outcome with
  | Machine.Finished -> ()
  | Machine.Out_of_cycles | Machine.Deadlock _ | Machine.Fault_limit _
  | Machine.Stopped _ ->
    Alcotest.fail "backpressure must drain, not deadlock");
  Alcotest.(check int) "last value delivered in order" 3
    (Voltron_mem.Memory.read (Machine.memory m) 0);
  let st = Machine.stats m in
  Alcotest.(check bool) "sender stalled on capacity" true
    ((Stats.core st 0).Stats.sync_stall > 0)

(* --- Energy model ------------------------------------------------------------- *)

module Energy = Voltron_machine.Energy

let test_energy_monotone () =
  (* More work costs more energy; the report is internally consistent. *)
  let run n =
    let body =
      List.concat
        (List.init n (fun i ->
             [ (None, [ Inst.Alu { op = Inst.Mul; dst = 2; src1 = imm (i + 1); src2 = imm 3 } ]) ]))
    in
    let image = assemble (body @ [ (None, [ Inst.Halt ]) ]) in
    let m = build_machine [| image |] in
    let _ = run_ok m in
    Energy.of_run ~stats:(Machine.stats m) ~coherence:(Machine.coherence m)
      ~network:(Machine.network m) ()
  in
  let small = run 5 and large = run 50 in
  Alcotest.(check bool) "consistent total" true
    (abs_float (small.Energy.e_total -. (small.Energy.e_dynamic +. small.Energy.e_static)) < 1e-9);
  Alcotest.(check bool) "more work, more energy" true
    (large.Energy.e_total > small.Energy.e_total);
  Alcotest.(check bool) "edp = total * cycles" true (large.Energy.edp > large.Energy.e_total)

let () =
  Alcotest.run "machine"
    [
      ( "single-core",
        [
          Alcotest.test_case "arith and store" `Quick test_single_core_arith;
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "load interlock" `Quick test_load_latency_interlock;
        ] );
      ( "decoupled",
        [
          Alcotest.test_case "spawn/send/recv" `Quick test_spawn_send_recv;
          Alcotest.test_case "recv stall classes" `Quick test_recv_stall_classification;
        ] );
      ( "coupled",
        [
          Alcotest.test_case "put/get lock-step" `Quick test_coupled_put_get;
          Alcotest.test_case "bcast/getb branch" `Quick test_coupled_bcast_getb;
        ] );
      ( "tm",
        [
          Alcotest.test_case "clean commit" `Quick test_tm_commit_no_conflict;
          Alcotest.test_case "conflict rollback" `Quick test_tm_conflict_rollback;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "deadlock watchdog" `Quick test_deadlock_detected;
          Alcotest.test_case "coupled GET without PUT" `Quick
            test_deadlock_get_no_put;
          Alcotest.test_case "TM commit livelock" `Quick test_deadlock_tm_commit;
        ] );
      ( "trace",
        [
          Alcotest.test_case "events and hotspots" `Quick test_trace_events;
          Alcotest.test_case "limit" `Quick test_trace_limit;
        ] );
      ("energy", [ Alcotest.test_case "monotone" `Quick test_energy_monotone ]);
      ( "corners",
        [
          Alcotest.test_case "multi-hop relay" `Quick test_multi_hop_relay;
          Alcotest.test_case "group stall" `Quick test_lockstep_group_stall;
          Alcotest.test_case "send backpressure" `Quick test_send_backpressure;
        ] );
    ]
