(* Tests for the analysis layer: affine index forms and dependence tests,
   profiling (trip counts, cross-iteration RAW observation, miss rates),
   DOALL classification incl. accumulator recognition, memory-dependence
   queries, and dependence-graph construction. *)

module B = Voltron_ir.Builder
module Hir = Voltron_ir.Hir
module Affine = Voltron_analysis.Affine
module Profile = Voltron_analysis.Profile
module Doall = Voltron_analysis.Doall
module Memdep = Voltron_analysis.Memdep
module Depgraph = Voltron_analysis.Depgraph
module Inst = Voltron_isa.Inst

let imm = B.imm

(* --- Affine ------------------------------------------------------------------- *)

let test_linexpr_algebra () =
  let open Affine in
  let e = add (scale 3 (var_ 1)) (const_ 5) in
  Alcotest.(check int) "coeff" 3 (coeff e 1);
  Alcotest.(check (option int)) "not const" None (is_const e);
  let d = sub e (scale 3 (var_ 1)) in
  Alcotest.(check (option int)) "const diff" (Some 5) (is_const d);
  Alcotest.(check bool) "equal" true (equal e (add (const_ 5) (scale 3 (var_ 1))))

(* Build a loop body and extract index forms. *)
let loop_body_of build =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 16) (fun i -> build b a i));
  let p = B.finish b in
  match p.Hir.regions with
  | [ { Hir.stmts = [ { Hir.node = Hir.For loop; _ } ]; _ } ] -> (loop, p)
  | _ -> Alcotest.fail "unexpected program shape"

let test_index_forms_linear () =
  let loop, _ =
    loop_body_of (fun b a i ->
        let j = B.add b (B.mul b i (imm 2)) (imm 3) in
        B.store b a j (imm 1))
  in
  let forms = Affine.index_forms ~loop_vars:[ loop.Hir.var ] loop.Hir.body in
  let linear = Hashtbl.fold (fun _ f acc -> (f <> None) :: acc) forms [] in
  Alcotest.(check (list bool)) "store index is linear" [ true ] linear;
  Hashtbl.iter
    (fun _ f ->
      match f with
      | Some e ->
        Alcotest.(check int) "coeff 2" 2 (Affine.coeff e loop.Hir.var)
      | None -> Alcotest.fail "linear form expected")
    forms

let test_index_forms_kills_loop_body_defs () =
  (* x = x + 1 inside the body is not affine in the loop variable. *)
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 () in
  B.region b "main" (fun () ->
      let x = B.fresh b in
      B.assign b x (Hir.Operand (imm 0));
      B.for_ b ~from:(imm 0) ~limit:(imm 8) (fun _i ->
          B.assign b x (Hir.Alu (Inst.Add, Hir.Reg x, imm 3));
          B.store b a (Hir.Reg x) (imm 1)));
  let p = B.finish b in
  let loop =
    match p.Hir.regions with
    | [ { Hir.stmts = [ _; { Hir.node = Hir.For l; _ } ]; _ } ] -> l
    | _ -> Alcotest.fail "shape"
  in
  let forms = Affine.index_forms ~loop_vars:[ loop.Hir.var ] loop.Hir.body in
  Hashtbl.iter
    (fun _ f -> Alcotest.(check bool) "pointer-walk index unknown" true (f = None))
    forms

let test_cross_iteration_alias () =
  let open Affine in
  let v = 9 in
  let f k c = Some (add (scale k (var_ v)) (const_ c)) in
  let check expect a b =
    Alcotest.(check bool) "verdict" true (cross_iteration_alias ~var:v a b = expect)
  in
  check Same_iteration_only (f 1 0) (f 1 0);
  check May_cross (f 1 0) (f 1 1) (* a[i] vs a[i+1] *);
  check Never (f 2 0) (f 2 1) (* a[2i] vs a[2i+1] *);
  check May_cross (f 1 0) (f 1 5);
  check Never (Some (const_ 3)) (Some (const_ 7));
  check May_cross (Some (const_ 3)) (Some (const_ 3));
  check Unknown None (f 1 0);
  check Unknown (f 1 0) (f 2 0)

(* Loop-carried dependences at distance greater than one: a[i] against
   a[i+k] collides k iterations apart for any stride-compatible k, while
   offsets that the stride can never make up stay disjoint. *)
let test_cross_iteration_distance () =
  let open Affine in
  let v = 9 in
  let f k c = Some (add (scale k (var_ v)) (const_ c)) in
  let check expect a b =
    Alcotest.(check bool) "verdict" true (cross_iteration_alias ~var:v a b = expect)
  in
  check May_cross (f 1 0) (f 1 2) (* a[i] vs a[i+2]: distance 2 *);
  check May_cross (f 1 0) (f 1 7) (* distance 7 *);
  check May_cross (f 2 0) (f 2 6) (* a[2i] vs a[2i+6]: distance 3 *);
  check Never (f 3 0) (f 3 7) (* stride 3 never makes up an offset of 7 *);
  check May_cross (f 1 2) (f 1 0) (* symmetric *)

(* --- Profile ------------------------------------------------------------------- *)

let test_profile_trips_and_raw () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 ~init:(fun i -> i) () in
  let dep = B.array b ~name:"dep" ~size:64 ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      (* Independent loop. *)
      B.for_ b ~from:(imm 0) ~limit:(imm 10) (fun i ->
          B.store b a i (B.add b i (imm 1)));
      (* Loop with a genuine cross-iteration RAW: dep[i] <- dep[i-1]. *)
      B.for_ b ~from:(imm 1) ~limit:(imm 10) (fun i ->
          let prev = B.load b dep (B.sub b i (imm 1)) in
          B.store b dep i prev));
  let p = B.finish b in
  let profile = Profile.collect p in
  let loops = ref [] in
  List.iter
    (fun (r : Hir.region) ->
      Hir.iter_stmts
        (fun s ->
          match s.Hir.node with
          | Hir.For _ -> loops := s.Hir.sid :: !loops
          | _ -> ())
        r.Hir.stmts)
    p.Hir.regions;
  match List.rev !loops with
  | [ clean; dirty ] ->
    Alcotest.(check (float 0.01)) "clean trips" 10. (Profile.avg_trip profile clean);
    Alcotest.(check (float 0.01)) "dirty trips" 9. (Profile.avg_trip profile dirty);
    Alcotest.(check bool) "clean has no RAW" false (Profile.has_cross_raw profile clean);
    Alcotest.(check bool) "dirty has RAW" true (Profile.has_cross_raw profile dirty)
  | _ -> Alcotest.fail "two loops expected"

let test_profile_miss_rates () =
  let b = B.create "t" in
  (* 8192-word array walked with a line-sized stride: every access a miss.
     A 16-word array: virtually all hits. *)
  let big = B.array b ~name:"big" ~size:8192 ~init:(fun i -> i) () in
  let small = B.array b ~name:"small" ~size:16 ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 512) (fun i ->
          let j = B.binop b Inst.And (B.mul b i (imm 8)) (imm 8191) in
          let v1 = B.load b big j in
          let v2 = B.load b small (B.binop b Inst.And i (imm 15)) in
          B.store b small (imm 0) (B.add b v1 v2)));
  let p = B.finish b in
  let profile = Profile.collect p in
  let rates = ref [] in
  List.iter
    (fun (r : Hir.region) ->
      Hir.iter_stmts
        (fun s ->
          match s.Hir.node with
          | Hir.Assign (_, Hir.Load _) -> rates := Profile.miss_rate profile s.Hir.sid :: !rates
          | _ -> ())
        r.Hir.stmts)
    p.Hir.regions;
  match List.rev !rates with
  | [ big_rate; small_rate ] ->
    Alcotest.(check bool) "big array misses a lot" true (big_rate > 0.5);
    Alcotest.(check bool) "small array mostly hits" true (small_rate < 0.2)
  | _ -> Alcotest.fail "two loads expected"

(* --- DOALL --------------------------------------------------------------------- *)

let classify build =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 ~init:(fun i -> i) () in
  let a2 = B.array b ~name:"a2" ~size:64 ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 32) (fun i -> build b a a2 i));
  let p = B.finish b in
  let profile = Profile.collect p in
  match p.Hir.regions with
  | [ { Hir.stmts = [ { Hir.sid; node = Hir.For loop; _ } ]; _ } ] ->
    Doall.classify loop ~profile ~loop_sid:sid
  | _ -> Alcotest.fail "shape"

let test_doall_proven () =
  match classify (fun b a a2 i -> B.store b a i (B.add b (B.load b a2 i) (imm 1))) with
  | Doall.Proven [] -> ()
  | Doall.Proven _ -> Alcotest.fail "no accumulators expected"
  | Doall.Speculative _ -> Alcotest.fail "should be proven"
  | Doall.Rejected r -> Alcotest.fail ("rejected: " ^ r)

let test_doall_accumulator () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      let acc = B.fresh b in
      B.assign b acc (Hir.Operand (imm 0));
      B.for_ b ~from:(imm 0) ~limit:(imm 32) (fun i ->
          let v = B.load b a i in
          B.assign b acc (Hir.Alu (Inst.Add, Hir.Reg acc, v)));
      B.store b a (imm 0) (Hir.Reg acc));
  let p = B.finish b in
  let profile = Profile.collect p in
  let loop, sid =
    match p.Hir.regions with
    | [ { Hir.stmts = [ _; { Hir.sid; node = Hir.For l; _ }; _ ]; _ } ] -> (l, sid)
    | _ -> Alcotest.fail "shape"
  in
  match Doall.classify loop ~profile ~loop_sid:sid with
  | Doall.Proven [ acc ] ->
    Alcotest.(check bool) "accumulator found" true (acc.Doall.acc_vreg >= 0)
  | Doall.Proven l ->
    Alcotest.fail (Printf.sprintf "%d accumulators" (List.length l))
  | Doall.Speculative _ -> Alcotest.fail "should be proven"
  | Doall.Rejected r -> Alcotest.fail ("rejected: " ^ r)

let test_doall_rejects_scalar_recurrence () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      let x = B.fresh b in
      B.assign b x (Hir.Operand (imm 1));
      B.for_ b ~from:(imm 0) ~limit:(imm 32) (fun i ->
          (* x is read and then multiplied — not an accumulator. *)
          let y = B.binop b Inst.Xor (Hir.Reg x) i in
          B.assign b x (Hir.Alu (Inst.Mul, y, imm 3));
          B.store b a i (Hir.Reg x)));
  let p = B.finish b in
  let profile = Profile.collect p in
  let loop, sid =
    match p.Hir.regions with
    | [ { Hir.stmts = [ _; { Hir.sid; node = Hir.For l; _ } ]; _ } ] -> (l, sid)
    | _ -> Alcotest.fail "shape"
  in
  match Doall.classify loop ~profile ~loop_sid:sid with
  | Doall.Rejected _ -> ()
  | Doall.Proven _ | Doall.Speculative _ ->
    Alcotest.fail "scalar recurrence must reject DOALL"

let test_doall_rejects_memory_recurrence () =
  match
    classify (fun b a _ i ->
        let prev = B.load b a (B.sub b i (imm 0)) in
        (* a[i] <- f(a[i]) is fine; make it a[i+1] <- f(a[i]): *)
        B.store b a (B.add b i (imm 1)) (B.add b prev (imm 1)))
  with
  | Doall.Rejected _ -> ()
  | Doall.Proven _ -> Alcotest.fail "cross-iteration RAW must not be proven"
  | Doall.Speculative _ -> Alcotest.fail "profile must observe the RAW"

let test_doall_speculative_indirect () =
  (* Indirection defeats the affine test but profiling sees no RAW. *)
  match
    classify (fun b a a2 i ->
        let j = B.load b a2 i in
        B.store b a (B.binop b Inst.And j (imm 63)) (imm 5))
  with
  | Doall.Speculative _ -> ()
  | Doall.Proven _ -> Alcotest.fail "indirect store cannot be proven"
  | Doall.Rejected r -> Alcotest.fail ("rejected: " ^ r)

(* --- Memdep / Depgraph ----------------------------------------------------------- *)

let lower_one stmts_build =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 () in
  let a2 = B.array b ~name:"a2" ~size:64 () in
  B.region b "main" (fun () -> stmts_build b a a2);
  let p = B.finish b in
  let lay = Voltron_ir.Layout.compute p in
  let ctx = Voltron_ir.Lower.make_ctx ~layout:lay ~first_vreg:p.Hir.n_vregs in
  match p.Hir.regions with
  | [ r ] ->
    let cfg = Voltron_ir.Lower.region ctx r.Hir.stmts in
    (cfg, Memdep.create ~region_stmts:r.Hir.stmts cfg)
  | _ -> Alcotest.fail "one region"

let test_memdep_arrays_disjoint () =
  let cfg, md = lower_one (fun b a a2 ->
      let v = B.load b a (imm 0) in
      B.store b a2 (imm 0) v)
  in
  let mem_ops = List.filter (Memdep.is_mem md) (Voltron_ir.Cfg.all_ops cfg) in
  match mem_ops with
  | [ x; y ] ->
    Alcotest.(check bool) "different arrays never alias" false (Memdep.ever_alias md x y)
  | _ -> Alcotest.fail "two mem ops"

let test_memdep_same_cell () =
  let cfg, md = lower_one (fun b a _ ->
      let v = B.load b a (imm 3) in
      B.store b a (imm 3) v)
  in
  let mem_ops = List.filter (Memdep.is_mem md) (Voltron_ir.Cfg.all_ops cfg) in
  match mem_ops with
  | [ x; y ] ->
    Alcotest.(check bool) "same cell aliases" true (Memdep.same_instance_alias md x y);
    Alcotest.(check bool) "ever aliases" true (Memdep.ever_alias md x y)
  | _ -> Alcotest.fail "two mem ops"

(* Spill-slot-style accesses: two accesses into the same array through
   indices loaded from memory (not affine in anything) must conservatively
   alias — dropping the edge would let the partitioner reorder them across
   cores.  Accesses to a different array still never alias. *)
let test_memdep_unknown_index_conservative () =
  let cfg, md = lower_one (fun b a a2 ->
      let x = B.load b a2 (imm 0) in
      let y = B.load b a2 (imm 1) in
      let v = B.load b a x in
      B.store b a y v)
  in
  let mem_ops = List.filter (Memdep.is_mem md) (Voltron_ir.Cfg.all_ops cfg) in
  match mem_ops with
  | [ slot0; slot1; ld; st ] ->
    Alcotest.(check bool) "unknown indices alias conservatively" true
      (Memdep.ever_alias md ld st);
    Alcotest.(check bool) "also within one instance" true
      (Memdep.same_instance_alias md ld st);
    Alcotest.(check bool) "distinct slots stay disjoint" false
      (Memdep.same_instance_alias md slot0 slot1);
    Alcotest.(check bool) "different arrays still never alias" false
      (Memdep.ever_alias md slot0 st)
  | _ -> Alcotest.fail "four mem ops"

(* Loop-carried dependence at distance 2: a[i+2] = f(a[i]) never collides
   within one iteration, but iteration i's store feeds iteration i+2's
   load, so the cross-iteration edge must survive. *)
let test_memdep_loop_carried_distance_2 () =
  let cfg, md = lower_one (fun b a _ ->
      B.for_ b ~from:(imm 0) ~limit:(imm 16) (fun i ->
          let v = B.load b a i in
          B.store b a (B.add b i (imm 2)) v))
  in
  let mem_ops = List.filter (Memdep.is_mem md) (Voltron_ir.Cfg.all_ops cfg) in
  match mem_ops with
  | [ ld; st ] ->
    Alcotest.(check bool) "disjoint within one iteration" false
      (Memdep.same_instance_alias md ld st);
    Alcotest.(check bool) "carried across iterations" true (Memdep.ever_alias md ld st)
  | _ -> Alcotest.fail "two mem ops"

(* --- Sharpened dependence oracle -------------------------------------------- *)

(* A single-array loop region lowered with the oracle on or off. *)
let lower_sized ?(sharpen = true) ~size ~limit stmts_build =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm limit) (fun i -> stmts_build b a i));
  let p = B.finish b in
  let lay = Voltron_ir.Layout.compute p in
  let ctx = Voltron_ir.Lower.make_ctx ~layout:lay ~first_vreg:p.Hir.n_vregs in
  match p.Hir.regions with
  | [ r ] ->
    let cfg = Voltron_ir.Lower.region ctx r.Hir.stmts in
    (cfg, Memdep.create ~sharpen ~region_stmts:r.Hir.stmts cfg)
  | _ -> Alcotest.fail "one region"

let load_store_verdict (cfg, md) =
  match List.filter (Memdep.is_mem md) (Voltron_ir.Cfg.all_ops cfg) with
  | [ ld; st ] -> Memdep.ever_alias md ld st
  | _ -> Alcotest.fail "two mem ops"

(* Double-buffer halves through a masked subscript: load a[8 + (i land 7)]
   vs store a[i land 7]. The affine pass cannot express the mask, so only
   the interval oracle separates the windows. *)
let test_memdep_masked_halves () =
  let build b a i =
    let v = B.load b a (B.add b (imm 8) (B.binop b Inst.And i (imm 7))) in
    B.store b a (B.binop b Inst.And i (imm 7)) v
  in
  Alcotest.(check bool) "affine alone conservatively aliases" true
    (load_store_verdict (lower_sized ~sharpen:false ~size:64 ~limit:16 build));
  Alcotest.(check bool) "oracle proves windows disjoint" false
    (load_store_verdict (lower_sized ~size:64 ~limit:16 build))

(* Negative-stride store a[7 - i] against load a[base + i]: ranges
   [0, 7] vs [base, base + 7] — disjoint for base = 8, colliding for
   base = 0. Exact verdict both ways. *)
let test_memdep_negative_stride () =
  let build base b a i =
    let v = B.load b a (B.add b (imm base) i) in
    B.store b a (B.sub b (imm 7) i) v
  in
  Alcotest.(check bool) "shifted ranges disjoint" false
    (load_store_verdict (lower_sized ~size:64 ~limit:8 (build 8)));
  Alcotest.(check bool) "overlapping ranges alias" true
    (load_store_verdict (lower_sized ~size:64 ~limit:8 (build 0)))

(* Parity: store a[2i] (even cells) vs load a[513 - 2i] (odd cells). The
   intervals overlap; only the congruence component separates them. *)
let test_memdep_parity () =
  let build b a i =
    let v = B.load b a (B.sub b (imm 513) (B.mul b i (imm 2))) in
    B.store b a (B.mul b i (imm 2)) v
  in
  Alcotest.(check bool) "even/odd cells disjoint" false
    (load_store_verdict (lower_sized ~size:514 ~limit:256 build))

(* The window shape end-to-end through DOALL classification: speculative
   on affine evidence alone, proven once the oracle separates the
   halves. *)
let classify_sharpen ~sharpen build =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 32) (fun i -> build b a i));
  let p = B.finish b in
  let profile = Profile.collect p in
  match p.Hir.regions with
  | [ { Hir.stmts = [ { Hir.sid; node = Hir.For loop; _ } ]; _ } ] ->
    Doall.classify ~sharpen loop ~profile ~loop_sid:sid
  | _ -> Alcotest.fail "shape"

let test_doall_sharpen_upgrade () =
  let build b a i =
    let v = B.load b a (B.add b (imm 32) (B.binop b Inst.And i (imm 31))) in
    B.store b a i v
  in
  (match classify_sharpen ~sharpen:false build with
  | Doall.Speculative _ -> ()
  | Doall.Proven _ -> Alcotest.fail "affine alone cannot prove the window"
  | Doall.Rejected r -> Alcotest.fail ("rejected: " ^ r));
  match classify_sharpen ~sharpen:true build with
  | Doall.Proven [] -> ()
  | Doall.Proven _ -> Alcotest.fail "no accumulators expected"
  | Doall.Speculative _ -> Alcotest.fail "oracle should prove the window"
  | Doall.Rejected r -> Alcotest.fail ("rejected: " ^ r)

let test_depgraph_edges () =
  let cfg, md = lower_one (fun b a _ ->
      let v = B.load b a (imm 0) in
      let w = B.mul b v (imm 3) in
      B.store b a (imm 1) w)
  in
  let dg = Depgraph.build ~cfg ~memdep:md ~latency:Voltron_machine.Config.latency in
  (* load -> mul (reg) and mul -> store (reg); the affine test proves
     a[0] and a[1] disjoint, so no memory edge. *)
  Alcotest.(check int) "two register edges" 2 (List.length dg.Depgraph.edges);
  (* Priorities decrease along the chain. *)
  Alcotest.(check bool) "source priority highest" true
    (dg.Depgraph.priority.(0) > dg.Depgraph.priority.(Array.length dg.Depgraph.ops - 1))

let () =
  Alcotest.run "analysis"
    [
      ( "affine",
        [
          Alcotest.test_case "linexpr algebra" `Quick test_linexpr_algebra;
          Alcotest.test_case "linear forms" `Quick test_index_forms_linear;
          Alcotest.test_case "body defs killed" `Quick test_index_forms_kills_loop_body_defs;
          Alcotest.test_case "cross-iteration alias" `Quick test_cross_iteration_alias;
          Alcotest.test_case "cross-iteration distance" `Quick test_cross_iteration_distance;
        ] );
      ( "profile",
        [
          Alcotest.test_case "trips and raw" `Quick test_profile_trips_and_raw;
          Alcotest.test_case "miss rates" `Quick test_profile_miss_rates;
        ] );
      ( "doall",
        [
          Alcotest.test_case "proven" `Quick test_doall_proven;
          Alcotest.test_case "accumulator" `Quick test_doall_accumulator;
          Alcotest.test_case "scalar recurrence" `Quick test_doall_rejects_scalar_recurrence;
          Alcotest.test_case "memory recurrence" `Quick test_doall_rejects_memory_recurrence;
          Alcotest.test_case "speculative indirect" `Quick test_doall_speculative_indirect;
        ] );
      ( "memdep",
        [
          Alcotest.test_case "arrays disjoint" `Quick test_memdep_arrays_disjoint;
          Alcotest.test_case "same cell" `Quick test_memdep_same_cell;
          Alcotest.test_case "unknown index conservative" `Quick
            test_memdep_unknown_index_conservative;
          Alcotest.test_case "loop carried distance 2" `Quick
            test_memdep_loop_carried_distance_2;
          Alcotest.test_case "depgraph edges" `Quick test_depgraph_edges;
        ] );
      ( "sharpen",
        [
          Alcotest.test_case "masked halves" `Quick test_memdep_masked_halves;
          Alcotest.test_case "negative stride" `Quick test_memdep_negative_stride;
          Alcotest.test_case "parity" `Quick test_memdep_parity;
          Alcotest.test_case "doall upgrade" `Quick test_doall_sharpen_upgrade;
        ] );
    ]
