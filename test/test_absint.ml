(* Tests for the abstract interpreter: domain transfer functions, loop
   trip bounds (counted and do-while), the per-site index summaries the
   dependence oracle consumes, injected-bug diagnostics, and the
   zero-false-positive sweep over the benchmark suite and generated
   programs. *)

module B = Voltron_ir.Builder
module Hir = Voltron_ir.Hir
module Inst = Voltron_isa.Inst
module Dom = Voltron_absint.Dom
module Absint = Voltron_absint.Absint
module Suite = Voltron_workloads.Suite
module Gen = Voltron_gen.Gen
module Frontend = Voltron_lang.Frontend

let imm = B.imm

(* --- Domain ----------------------------------------------------------------- *)

let test_dom_const_arith () =
  let c = Dom.const in
  Alcotest.(check (option int)) "3+4" (Some 7) (Dom.is_const (Dom.alu Inst.Add (c 3) (c 4)));
  Alcotest.(check (option int)) "6*7" (Some 42) (Dom.is_const (Dom.alu Inst.Mul (c 6) (c 7)));
  Alcotest.(check (option int)) "13-20" (Some (-7)) (Dom.is_const (Dom.alu Inst.Sub (c 13) (c 20)));
  (* Division by zero yields 0 in the concrete semantics; the transfer
     must agree, not go to bottom. *)
  Alcotest.(check (option int)) "5/0 = 0" (Some 0) (Dom.is_const (Dom.alu Inst.Div (c 5) (c 0)))

let test_dom_join_congruence () =
  let j = Dom.join (Dom.const 1) (Dom.const 5) in
  Alcotest.(check bool) "contains 1" true (Dom.contains j 1);
  Alcotest.(check bool) "contains 5" true (Dom.contains j 5);
  (* join keeps 1 (mod 4): 3 is excluded by congruence, not interval. *)
  Alcotest.(check bool) "excludes 3" false (Dom.contains j 3);
  Alcotest.(check bool) "may_equal 5" true (Dom.may_equal j (Dom.const 5));
  Alcotest.(check bool) "not may_equal 3" false (Dom.may_equal j (Dom.const 3))

let test_dom_masked_and () =
  (* i land 255 from an unknown value: the window-subscript pattern. *)
  let m = Dom.alu Inst.And Dom.top (Dom.const 255) in
  Alcotest.(check bool) "contains 0" true (Dom.contains m 0);
  Alcotest.(check bool) "contains 255" true (Dom.contains m 255);
  Alcotest.(check bool) "excludes 256" false (Dom.contains m 256);
  Alcotest.(check bool) "disjoint from 300" false (Dom.may_equal m (Dom.const 300));
  (* Shifted window halves are provably disjoint. *)
  let hi = Dom.add_const m 256 in
  Alcotest.(check bool) "halves disjoint" false (Dom.may_equal m hi)

let test_dom_stride () =
  let evens = Dom.loop_var ~init:(Dom.const 0) ~limit:(Dom.const 16) ~step:2 in
  Alcotest.(check bool) "contains 0" true (Dom.contains evens 0);
  Alcotest.(check bool) "contains 14" true (Dom.contains evens 14);
  Alcotest.(check bool) "excludes 15 (interval hi)" false (Dom.contains evens 15);
  Alcotest.(check bool) "excludes 3 (stride)" false (Dom.contains evens 3);
  let odds = Dom.with_stride ~m:2 ~r:1 Dom.top in
  Alcotest.(check bool) "evens/odds disjoint" false (Dom.may_equal evens odds)

let test_dom_widen () =
  let w = Dom.widen (Dom.range 0 4) (Dom.range 0 8) in
  Alcotest.(check bool) "unstable hi extrapolated" true (Dom.contains w 1_000_000);
  Alcotest.(check bool) "stable lo kept" false (Dom.contains w (-1));
  let s = Dom.widen (Dom.range 0 8) (Dom.range 0 8) in
  Alcotest.(check bool) "stable operand unchanged" true (Dom.equal s (Dom.range 0 8))

let test_dom_disjoint_intervals () =
  Alcotest.(check bool) "ranges disjoint" false
    (Dom.may_equal (Dom.range 0 10) (Dom.range 11 20));
  Alcotest.(check bool) "ranges overlap" true
    (Dom.may_equal (Dom.range 0 10) (Dom.range 10 20))

(* --- Trip bounds ------------------------------------------------------------ *)

let test_for_trips () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 16) (fun i -> B.store b a i (imm 1)));
  let p = B.finish b in
  let sum = Absint.analyze p in
  match Absint.loops sum with
  | [ li ] ->
    Alcotest.(check bool) "counted" true (li.Absint.li_kind = `For);
    Alcotest.(check (float 0.0)) "est" 16.0 li.Absint.li_trip_est;
    Alcotest.(check (float 0.0)) "max" 16.0 li.Absint.li_trip_max
  | _ -> Alcotest.fail "one loop expected"

(* do { x += 3 } while (x < 30) from x = 0: exactly 10 trips, found by
   the syntactic counter-bound detector. *)
let test_do_while_counter_bound () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 () in
  B.region b "main" (fun () ->
      let x = B.fresh b in
      B.assign b x (Hir.Operand (imm 0));
      B.do_while b (fun () ->
          B.assign b x (Hir.Alu (Inst.Add, Hir.Reg x, imm 3));
          B.store b a (imm 0) (Hir.Reg x);
          B.cmp b Inst.Lt (Hir.Reg x) (imm 30)));
  let p = B.finish b in
  let sum = Absint.analyze p in
  match Absint.loops sum with
  | [ li ] ->
    Alcotest.(check bool) "do-while" true (li.Absint.li_kind = `Do_while);
    Alcotest.(check bool) "min one trip" true (li.Absint.li_trip_min >= 1.0);
    Alcotest.(check (float 0.0)) "bounded at 10" 10.0 li.Absint.li_trip_max
  | _ -> Alcotest.fail "one loop expected"

(* A do-while whose exit depends on loaded data has no static bound. *)
let test_do_while_unbounded () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      let x = B.fresh b in
      B.assign b x (Hir.Operand (imm 0));
      B.do_while b (fun () ->
          B.assign b x (Hir.Alu (Inst.Add, Hir.Reg x, imm 1));
          let v = B.load b a (B.binop b Inst.And (Hir.Reg x) (imm 63)) in
          B.cmp b Inst.Ne v (imm 0)));
  let p = B.finish b in
  let sum = Absint.analyze p in
  match Absint.loops sum with
  | [ li ] ->
    Alcotest.(check bool) "unbounded" true (li.Absint.li_trip_max = infinity)
  | _ -> Alcotest.fail "one loop expected"

(* --- Site summaries ---------------------------------------------------------- *)

let test_site_index_and_count () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 16) (fun i ->
          B.store b a (B.add b i (imm 4)) (imm 1)));
  let p = B.finish b in
  let sum = Absint.analyze p in
  match List.filter (fun s -> s.Absint.s_write) (Absint.sites sum) with
  | [ s ] ->
    Alcotest.(check bool) "contains 4" true (Dom.contains s.Absint.s_index 4);
    Alcotest.(check bool) "contains 19" true (Dom.contains s.Absint.s_index 19);
    Alcotest.(check bool) "excludes 20" false (Dom.contains s.Absint.s_index 20);
    Alcotest.(check (float 0.0)) "16 executions" 16.0 s.Absint.s_count
  | _ -> Alcotest.fail "one store site expected"

(* summarize_region starts from a top environment: live-in scalars are
   unconstrained, yet a mask still bounds the subscript — the shape the
   per-region dependence oracle relies on. *)
let test_summarize_region_top_entry () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:128 () in
  let v = B.fresh b in
  B.region b "main" (fun () ->
      B.store b a (B.binop b Inst.And (Hir.Reg v) (imm 63)) (imm 1));
  let p = B.finish b in
  let r = List.hd p.Hir.regions in
  let sum = Absint.summarize_region r.Hir.stmts in
  match List.filter (fun s -> s.Absint.s_write) (Absint.sites sum) with
  | [ s ] ->
    Alcotest.(check bool) "contains 63" true (Dom.contains s.Absint.s_index 63);
    Alcotest.(check bool) "excludes 64" false (Dom.contains s.Absint.s_index 64)
  | _ -> Alcotest.fail "one store site expected"

(* --- Injected-bug diagnostics ------------------------------------------------ *)

let classes sum = List.map (fun d -> Absint.kind_class d.Absint.d_kind) (Absint.diags sum)

let test_diag_oob () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 () in
  B.region b "main" (fun () -> B.store b a (imm 70) (imm 1));
  let sum = Absint.analyze (B.finish b) in
  match Absint.diags sum with
  | [ { Absint.d_kind = Absint.Oob { arr; size; write; _ }; _ } ] ->
    Alcotest.(check string) "array" "a" arr;
    Alcotest.(check int) "size" 64 size;
    Alcotest.(check bool) "write" true write
  | ds ->
    Alcotest.failf "expected exactly one oob, got [%s]"
      (String.concat "; " (List.map Absint.diag_to_string ds))

let test_diag_uninit_scalar () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 () in
  let v = B.fresh b in
  B.region b "main" (fun () -> B.store b a (imm 0) (Hir.Reg v));
  let sum = Absint.analyze (B.finish b) in
  (match Absint.diags sum with
  | [ { Absint.d_kind = Absint.Uninit_scalar { vreg }; _ } ] ->
    Alcotest.(check int) "the fresh vreg" v vreg
  | ds ->
    Alcotest.failf "expected exactly one uninit-scalar, got [%s]"
      (String.concat "; " (List.map Absint.diag_to_string ds)));
  ignore (classes sum)

let test_diag_uninit_cell () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 () in
  let out = B.array b ~name:"out" ~size:8 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 8) (fun i -> B.store b a i (imm 1));
      (* Cell 9 is provably outside the written range [0, 7]. *)
      let x = B.load b a (imm 9) in
      B.store b out (imm 0) x);
  let sum = Absint.analyze (B.finish b) in
  match Absint.diags sum with
  | [ { Absint.d_kind = Absint.Uninit_cell { arr; index }; _ } ] ->
    Alcotest.(check string) "array" "a" arr;
    Alcotest.(check (option int)) "cell" (Some 9) (Dom.is_const index)
  | ds ->
    Alcotest.failf "expected exactly one uninit-cell, got [%s]"
      (String.concat "; " (List.map Absint.diag_to_string ds))

let test_diag_dead_store () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 ~init:(fun _ -> 0) () in
  B.region b "main" (fun () ->
      B.store b a (imm 3) (imm 1);
      B.store b a (imm 3) (imm 2));
  let sum = Absint.analyze (B.finish b) in
  match Absint.diags sum with
  | [ { Absint.d_sid; d_kind = Absint.Dead_store { arr; index; killer_sid }; _ } ] ->
    Alcotest.(check string) "array" "a" arr;
    Alcotest.(check int) "cell" 3 index;
    Alcotest.(check bool) "killed by the later store" true (killer_sid > d_sid)
  | ds ->
    Alcotest.failf "expected exactly one dead-store, got [%s]"
      (String.concat "; " (List.map Absint.diag_to_string ds))

(* An intervening possibly-aliasing read keeps the store alive. *)
let test_dead_store_blocked_by_read () =
  let b = B.create "t" in
  let a = B.array b ~name:"a" ~size:64 ~init:(fun _ -> 0) () in
  let out = B.array b ~name:"out" ~size:8 () in
  B.region b "main" (fun () ->
      B.store b a (imm 3) (imm 1);
      let x = B.load b a (imm 3) in
      B.store b out (imm 0) x;
      B.store b a (imm 3) (imm 2));
  let sum = Absint.analyze (B.finish b) in
  Alcotest.(check (list string)) "no diagnostics" [] (classes sum)

(* --- Zero false positives ---------------------------------------------------- *)

let test_suite_clean () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let sum = Absint.analyze (b.Suite.build ~scale:0.2 ()) in
      Alcotest.(check (list string)) (b.Suite.bench_name ^ " clean") [] (classes sum))
    Suite.all;
  List.iter
    (fun (name, p) ->
      Alcotest.(check (list string)) (name ^ " clean") []
        (classes (Absint.analyze p)))
    [
      ("micro:gsm_llp", Suite.micro_gsm_llp ~scale:0.2 ());
      ("micro:gzip_strands", Suite.micro_gzip_strands ~scale:0.2 ());
      ("micro:gsm_ilp", Suite.micro_gsm_ilp ~scale:0.2 ());
    ]

(* Generated programs are correct by construction: subscripts are masked
   in-bounds and every variable is initialised at its declaration, so
   [oob] and [uninit-scalar] must never fire. Random code does read
   zero-filled cells it never writes, so [uninit-cell] reports are legal —
   but each one is validated against the reference interpreter's concrete
   write set: a report is a false positive exactly when some cell read at
   the reported site was in fact written. Dead stores are ordinary in
   random code and not gated. *)
let test_generated_sound () =
  for seed = 1 to 200 do
    let ast = Gen.program ~seed () in
    let p = Frontend.parse_string ~name:ast.Voltron_lang.Ast.prog_name (Gen.render ast) in
    let sum = Absint.analyze p in
    let written : (Hir.arr * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let loads_at : (int, (Hir.arr * int) list) Hashtbl.t = Hashtbl.create 64 in
    let events =
      {
        Voltron_ir.Interp.null_events with
        Voltron_ir.Interp.on_store = (fun ~sid:_ ~arr ~addr -> Hashtbl.replace written (arr, addr) ());
        on_load =
          (fun ~sid ~arr ~addr ->
            Hashtbl.replace loads_at sid
              ((arr, addr) :: Option.value ~default:[] (Hashtbl.find_opt loads_at sid)));
      }
    in
    ignore (Voltron_ir.Interp.run ~events p);
    List.iter
      (fun (d : Absint.diag) ->
        match Absint.kind_class d.Absint.d_kind with
        | "oob" | "uninit-scalar" ->
          Alcotest.failf "seed %d: %s" seed (Absint.diag_to_string d)
        | "uninit-cell" ->
          List.iter
            (fun cell ->
              if Hashtbl.mem written cell then
                Alcotest.failf "seed %d: false positive (cell was written): %s" seed
                  (Absint.diag_to_string d))
            (Option.value ~default:[] (Hashtbl.find_opt loads_at d.Absint.d_sid))
        | _ -> ())
      (Absint.diags sum)
  done

let () =
  Alcotest.run "absint"
    [
      ( "dom",
        [
          Alcotest.test_case "const arithmetic" `Quick test_dom_const_arith;
          Alcotest.test_case "join congruence" `Quick test_dom_join_congruence;
          Alcotest.test_case "masked and" `Quick test_dom_masked_and;
          Alcotest.test_case "stride" `Quick test_dom_stride;
          Alcotest.test_case "widen" `Quick test_dom_widen;
          Alcotest.test_case "disjoint intervals" `Quick test_dom_disjoint_intervals;
        ] );
      ( "trips",
        [
          Alcotest.test_case "for" `Quick test_for_trips;
          Alcotest.test_case "do-while counter bound" `Quick test_do_while_counter_bound;
          Alcotest.test_case "do-while unbounded" `Quick test_do_while_unbounded;
        ] );
      ( "sites",
        [
          Alcotest.test_case "index and count" `Quick test_site_index_and_count;
          Alcotest.test_case "top-entry region summary" `Quick test_summarize_region_top_entry;
        ] );
      ( "diags",
        [
          Alcotest.test_case "oob" `Quick test_diag_oob;
          Alcotest.test_case "uninit scalar" `Quick test_diag_uninit_scalar;
          Alcotest.test_case "uninit cell" `Quick test_diag_uninit_cell;
          Alcotest.test_case "dead store" `Quick test_diag_dead_store;
          Alcotest.test_case "dead store blocked by read" `Quick test_dead_store_blocked_by_read;
        ] );
      ( "false-positives",
        [
          Alcotest.test_case "suite clean" `Slow test_suite_clean;
          Alcotest.test_case "200 generated programs sound" `Slow test_generated_sound;
        ] );
    ]
