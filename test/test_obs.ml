(* Observability layer tests: the per-cycle accounting invariant, region
   attribution reconciling exactly with the global cycle count, the JSON
   emitter/parser roundtrip, the Chrome trace-event export's structural
   guarantees, metrics snapshots/deltas and the interval sampler. *)

module Suite = Voltron_workloads.Suite
module Config = Voltron_machine.Config
module Machine = Voltron_machine.Machine
module Stats = Voltron_machine.Stats
module Trace = Voltron_machine.Trace
module Driver = Voltron_compiler.Driver
module Json = Voltron_obs.Json
module Metrics = Voltron_obs.Metrics
module Region_profile = Voltron_obs.Region_profile
module Sampler = Voltron_obs.Sampler
module Chrome_trace = Voltron_obs.Chrome_trace

let representative_runs =
  [
    ("micro:gsm_llp", Suite.micro_gsm_llp ~scale:1.0 (), `Hybrid, 2);
    ("micro:gsm_ilp", Suite.micro_gsm_ilp ~scale:1.0 (), `Ilp, 2);
    ("micro:gzip_strands", Suite.micro_gzip_strands ~scale:1.0 (), `Tlp, 2);
    ("cjpeg", (Suite.by_name "cjpeg").Suite.build ~scale:0.25 (), `Hybrid, 4);
    ("179.art", (Suite.by_name "179.art").Suite.build ~scale:0.25 (), `Hybrid, 4);
  ]

(* Every stepped cycle, every core records exactly one of busy, a stall, or
   idle — so the per-core totals must reconstruct the run's cycle count. *)
let test_per_core_invariant () =
  List.iter
    (fun (name, p, choice, n_cores) ->
      let m = Voltron.Run.run ~choice ~n_cores p in
      (match m.Voltron.Run.outcome with
      | Voltron.Run.Completed -> ()
      | o -> Alcotest.fail (name ^ ": " ^ Voltron.Run.outcome_to_string o));
      let st = m.Voltron.Run.stats in
      for core = 0 to st.Stats.n_cores - 1 do
        let c = Stats.core st core in
        Alcotest.(check int)
          (Printf.sprintf "%s core %d: busy+stalls+idle = cycles" name core)
          st.Stats.cycles
          (c.Stats.busy + Stats.total_stalls c + c.Stats.idle)
      done)
    representative_runs

(* Region attribution accounts every core-cycle to exactly one
   (region, mode) cell: the acct total must equal n_cores * cycles, and
   each stall kind summed over regions must equal the global counter. *)
let test_region_attribution_reconciles () =
  List.iter
    (fun (name, p, choice, n_cores) ->
      let machine = Config.default ~n_cores in
      let compiled = Driver.compile ~machine ~choice p in
      let m = Machine.create machine compiled.Driver.executable in
      let rp = Region_profile.attach m compiled in
      let result = Machine.run m in
      (match result.Machine.outcome with
      | Machine.Finished -> ()
      | _ -> Alcotest.fail (name ^ ": run did not finish"));
      Alcotest.(check int)
        (name ^ ": attribution total = n_cores * cycles")
        (n_cores * result.Machine.cycles)
        (Region_profile.total_cycles rp);
      let st = Machine.stats m in
      let rows = Region_profile.rows rp in
      List.iter
        (fun kind ->
          let from_rows =
            List.fold_left
              (fun acc (r : Region_profile.row) ->
                acc + r.Region_profile.r_stalls.(Stats.stall_kind_index kind))
              0 rows
          in
          let global = ref 0 in
          for core = 0 to st.Stats.n_cores - 1 do
            global := !global + Stats.stall_of (Stats.core st core) kind
          done;
          Alcotest.(check int)
            (Printf.sprintf "%s: %s sum over regions = global" name
               (Stats.stall_kind_label kind))
            !global from_rows)
        Stats.all_stall_kinds)
    representative_runs

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Float 1.5);
        ("esc", Json.Str "line\nquote\" back\\slash\ttab");
        ("empty", Json.Obj []);
        ("arr", Json.List [ Json.Null; Json.Bool true; Json.Int (-7) ]);
        ("nested", Json.Obj [ ("xs", Json.List [ Json.Str "s" ]) ]);
      ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact roundtrip" true (v = v')
  | Error e -> Alcotest.fail ("parse of to_string failed: " ^ e));
  (match Json.parse (Format.asprintf "%a" Json.pp v) with
  | Ok v' -> Alcotest.(check bool) "pretty roundtrip" true (v = v')
  | Error e -> Alcotest.fail ("parse of pp failed: " ^ e));
  (match Json.parse "{\"a\": 1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  (match Json.parse "[1, 2," with
  | Ok _ -> Alcotest.fail "truncated array accepted"
  | Error _ -> ());
  Alcotest.(check string)
    "non-finite floats emit null" "[null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]));
  match Json.parse "{\"u\": \"\\u0041\\u00e9\", \"n\": -3.5e2}" with
  | Ok v ->
    Alcotest.(check (option string))
      "unicode escapes" (Some "A\xc3\xa9")
      (Option.bind (Json.member "u" v) Json.to_string_opt);
    Alcotest.(check (option (float 1e-9)))
      "float literal" (Some (-350.))
      (Option.bind (Json.member "n" v) Json.to_float_opt)
  | Error e -> Alcotest.fail ("escape parse failed: " ^ e)

(* The Chrome trace export must parse back, keep timestamps nondecreasing
   in event order, and balance every B with an E on the same track. *)
let test_chrome_trace_export () =
  let p = (Suite.by_name "cjpeg").Suite.build ~scale:0.25 () in
  let n_cores = 4 in
  let machine = Config.default ~n_cores in
  let compiled = Driver.compile ~machine p in
  let m = Machine.create machine compiled.Driver.executable in
  let tracer = Trace.create () in
  Machine.set_tracer m tracer;
  let result = Machine.run m in
  (match result.Machine.outcome with
  | Machine.Finished -> ()
  | _ -> Alcotest.fail "trace run did not finish");
  let json =
    Chrome_trace.of_trace ~n_cores ~cycles:result.Machine.cycles tracer
  in
  let reparsed =
    match Json.parse (Json.to_string json) with
    | Ok v -> v
    | Error e -> Alcotest.fail ("chrome trace does not parse: " ^ e)
  in
  let events =
    match Option.bind (Json.member "traceEvents" reparsed) Json.to_list_opt with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (List.length events > n_cores + 2);
  let field name ev = Json.member name ev in
  let str name ev = Option.bind (field name ev) Json.to_string_opt in
  let last_ts = ref 0 in
  let depth = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match str "ph" ev with
      | None -> Alcotest.fail "event without ph"
      | Some "M" -> ()
      | Some ph ->
        let ts =
          match Option.bind (field "ts" ev) Json.to_int_opt with
          | Some ts -> ts
          | None -> Alcotest.fail "timed event without ts"
        in
        Alcotest.(check bool) "ts nondecreasing" true (ts >= !last_ts);
        last_ts := ts;
        let tid =
          match Option.bind (field "tid" ev) Json.to_int_opt with
          | Some tid -> tid
          | None -> Alcotest.fail "event without tid"
        in
        let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
        (match ph with
        | "B" -> Hashtbl.replace depth tid (d + 1)
        | "E" ->
          Alcotest.(check bool) "E without open B" true (d > 0);
          Hashtbl.replace depth tid (d - 1)
        | _ -> ()))
    events;
  Hashtbl.iter
    (fun tid d ->
      Alcotest.(check int) (Printf.sprintf "track %d spans balanced" tid) 0 d)
    depth

let test_metrics_snapshot_and_delta () =
  let p = Suite.micro_gsm_llp ~scale:1.0 () in
  let m = Voltron.Run.run ~n_cores:2 p in
  let metrics =
    Metrics.of_stats ~label:"gsm_llp" ~coherence:m.Voltron.Run.coh_stats
      ~network:m.Voltron.Run.net_stats m.Voltron.Run.stats
  in
  Alcotest.(check (option (float 1e-9)))
    "find cycles"
    (Some (float_of_int m.Voltron.Run.cycles))
    (Metrics.find "cycles" metrics);
  Alcotest.(check bool)
    "accesses flow through" true
    (metrics.Metrics.cache.Metrics.accesses > 0);
  let d = Metrics.delta ~before:metrics ~after:metrics in
  List.iter
    (fun (name, v) ->
      if name <> "net_max_occupancy" then
        Alcotest.(check int) ("self-delta " ^ name) 0 v)
    (Metrics.counters d);
  (* to_json carries every counter faithfully. *)
  let j = Metrics.to_json metrics in
  Alcotest.(check (option int))
    "json cycles"
    (Some m.Voltron.Run.cycles)
    (Option.bind
       (Option.bind (Json.member "machine" j) (Json.member "cycles"))
       Json.to_int_opt)

let test_sampler () =
  let p = (Suite.by_name "cjpeg").Suite.build ~scale:0.25 () in
  let machine = Config.default ~n_cores:4 in
  let compiled = Driver.compile ~machine p in
  let m = Machine.create machine compiled.Driver.executable in
  let sampler = Sampler.attach ~every:500 m in
  let result = Machine.run m in
  (match result.Machine.outcome with
  | Machine.Finished -> ()
  | _ -> Alcotest.fail "sampler run did not finish");
  let samples = Sampler.samples sampler in
  Alcotest.(check bool)
    "collected samples" true
    (List.length samples = result.Machine.cycles / 500);
  List.iteri
    (fun i s ->
      Alcotest.(check int)
        (Printf.sprintf "sample %d cycle" i)
        ((i + 1) * 500) s.Sampler.s_cycle;
      Alcotest.(check bool)
        (Printf.sprintf "sample %d occupancy in range" i)
        true
        (s.Sampler.s_occupancy >= 0. && s.Sampler.s_occupancy <= 1.))
    samples;
  Alcotest.(check bool) "attach rejects every<=0" true
    (match Sampler.attach ~every:0 m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "obs"
    [
      ( "accounting",
        [
          Alcotest.test_case "per-core invariant" `Quick test_per_core_invariant;
          Alcotest.test_case "region attribution reconciles" `Quick
            test_region_attribution_reconciles;
        ] );
      ( "export",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_export;
          Alcotest.test_case "metrics snapshot and delta" `Quick
            test_metrics_snapshot_and_delta;
          Alcotest.test_case "sampler" `Quick test_sampler;
        ] );
    ]
