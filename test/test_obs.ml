(* Observability layer tests: the per-cycle accounting invariant, region
   attribution reconciling exactly with the global cycle count, the JSON
   emitter/parser roundtrip, the Chrome trace-event export's structural
   guarantees, metrics snapshots/deltas and the interval sampler. *)

module Suite = Voltron_workloads.Suite
module Config = Voltron_machine.Config
module Machine = Voltron_machine.Machine
module Stats = Voltron_machine.Stats
module Trace = Voltron_machine.Trace
module Driver = Voltron_compiler.Driver
module Json = Voltron_obs.Json
module Metrics = Voltron_obs.Metrics
module Region_profile = Voltron_obs.Region_profile
module Sampler = Voltron_obs.Sampler
module Chrome_trace = Voltron_obs.Chrome_trace
module Blame = Voltron_obs.Blame
module Critpath = Voltron_obs.Critpath

let representative_runs =
  [
    ("micro:gsm_llp", Suite.micro_gsm_llp ~scale:1.0 (), `Hybrid, 2);
    ("micro:gsm_ilp", Suite.micro_gsm_ilp ~scale:1.0 (), `Ilp, 2);
    ("micro:gzip_strands", Suite.micro_gzip_strands ~scale:1.0 (), `Tlp, 2);
    ("cjpeg", (Suite.by_name "cjpeg").Suite.build ~scale:0.25 (), `Hybrid, 4);
    ("179.art", (Suite.by_name "179.art").Suite.build ~scale:0.25 (), `Hybrid, 4);
  ]

(* Every stepped cycle, every core records exactly one of busy, a stall, or
   idle — so the per-core totals must reconstruct the run's cycle count. *)
let test_per_core_invariant () =
  List.iter
    (fun (name, p, choice, n_cores) ->
      let m = Voltron.Run.run ~choice ~n_cores p in
      (match m.Voltron.Run.outcome with
      | Voltron.Run.Completed -> ()
      | o -> Alcotest.fail (name ^ ": " ^ Voltron.Run.outcome_to_string o));
      let st = m.Voltron.Run.stats in
      for core = 0 to st.Stats.n_cores - 1 do
        let c = Stats.core st core in
        Alcotest.(check int)
          (Printf.sprintf "%s core %d: busy+stalls+idle = cycles" name core)
          st.Stats.cycles
          (c.Stats.busy + Stats.total_stalls c + c.Stats.idle)
      done)
    representative_runs

(* Region attribution accounts every core-cycle to exactly one
   (region, mode) cell: the acct total must equal n_cores * cycles, and
   each stall kind summed over regions must equal the global counter. *)
let test_region_attribution_reconciles () =
  List.iter
    (fun (name, p, choice, n_cores) ->
      let machine = Config.default ~n_cores in
      let compiled = Driver.compile ~machine ~choice p in
      let m = Machine.create machine compiled.Driver.executable in
      let rp = Region_profile.attach m compiled in
      let result = Machine.run m in
      (match result.Machine.outcome with
      | Machine.Finished -> ()
      | _ -> Alcotest.fail (name ^ ": run did not finish"));
      Alcotest.(check int)
        (name ^ ": attribution total = n_cores * cycles")
        (n_cores * result.Machine.cycles)
        (Region_profile.total_cycles rp);
      let st = Machine.stats m in
      let rows = Region_profile.rows rp in
      List.iter
        (fun kind ->
          let from_rows =
            List.fold_left
              (fun acc (r : Region_profile.row) ->
                acc + r.Region_profile.r_stalls.(Stats.stall_kind_index kind))
              0 rows
          in
          let global = ref 0 in
          for core = 0 to st.Stats.n_cores - 1 do
            global := !global + Stats.stall_of (Stats.core st core) kind
          done;
          Alcotest.(check int)
            (Printf.sprintf "%s: %s sum over regions = global" name
               (Stats.stall_kind_label kind))
            !global from_rows)
        Stats.all_stall_kinds)
    representative_runs

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Float 1.5);
        ("esc", Json.Str "line\nquote\" back\\slash\ttab");
        ("empty", Json.Obj []);
        ("arr", Json.List [ Json.Null; Json.Bool true; Json.Int (-7) ]);
        ("nested", Json.Obj [ ("xs", Json.List [ Json.Str "s" ]) ]);
      ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact roundtrip" true (v = v')
  | Error e -> Alcotest.fail ("parse of to_string failed: " ^ e));
  (match Json.parse (Format.asprintf "%a" Json.pp v) with
  | Ok v' -> Alcotest.(check bool) "pretty roundtrip" true (v = v')
  | Error e -> Alcotest.fail ("parse of pp failed: " ^ e));
  (match Json.parse "{\"a\": 1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  (match Json.parse "[1, 2," with
  | Ok _ -> Alcotest.fail "truncated array accepted"
  | Error _ -> ());
  Alcotest.(check string)
    "non-finite floats emit null" "[null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]));
  match Json.parse "{\"u\": \"\\u0041\\u00e9\", \"n\": -3.5e2}" with
  | Ok v ->
    Alcotest.(check (option string))
      "unicode escapes" (Some "A\xc3\xa9")
      (Option.bind (Json.member "u" v) Json.to_string_opt);
    Alcotest.(check (option (float 1e-9)))
      "float literal" (Some (-350.))
      (Option.bind (Json.member "n" v) Json.to_float_opt)
  | Error e -> Alcotest.fail ("escape parse failed: " ^ e)

(* The Chrome trace export must parse back, keep timestamps nondecreasing
   in event order, and balance every B with an E on the same track. *)
let test_chrome_trace_export () =
  let p = (Suite.by_name "cjpeg").Suite.build ~scale:0.25 () in
  let n_cores = 4 in
  let machine = Config.default ~n_cores in
  let compiled = Driver.compile ~machine p in
  let m = Machine.create machine compiled.Driver.executable in
  let tracer = Trace.create () in
  Machine.set_tracer m tracer;
  let result = Machine.run m in
  (match result.Machine.outcome with
  | Machine.Finished -> ()
  | _ -> Alcotest.fail "trace run did not finish");
  let json =
    Chrome_trace.of_trace ~n_cores ~cycles:result.Machine.cycles tracer
  in
  let reparsed =
    match Json.parse (Json.to_string json) with
    | Ok v -> v
    | Error e -> Alcotest.fail ("chrome trace does not parse: " ^ e)
  in
  let events =
    match Option.bind (Json.member "traceEvents" reparsed) Json.to_list_opt with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (List.length events > n_cores + 2);
  let field name ev = Json.member name ev in
  let str name ev = Option.bind (field name ev) Json.to_string_opt in
  let last_ts = ref 0 in
  let depth = Hashtbl.create 8 in
  let flows = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match str "ph" ev with
      | None -> Alcotest.fail "event without ph"
      | Some "M" -> ()
      | Some ph ->
        let ts =
          match Option.bind (field "ts" ev) Json.to_int_opt with
          | Some ts -> ts
          | None -> Alcotest.fail "timed event without ts"
        in
        Alcotest.(check bool) "ts nondecreasing" true (ts >= !last_ts);
        last_ts := ts;
        let tid =
          match Option.bind (field "tid" ev) Json.to_int_opt with
          | Some tid -> tid
          | None -> Alcotest.fail "event without tid"
        in
        let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
        (match ph with
        | "B" -> Hashtbl.replace depth tid (d + 1)
        | "E" ->
          Alcotest.(check bool) "E without open B" true (d > 0);
          Hashtbl.replace depth tid (d - 1)
        | "s" | "f" ->
          let id =
            match Option.bind (field "id" ev) Json.to_int_opt with
            | Some id -> id
            | None -> Alcotest.fail "flow event without id"
          in
          let starts, finishes =
            Option.value ~default:(0, 0) (Hashtbl.find_opt flows id)
          in
          if ph = "s" then Hashtbl.replace flows id (starts + 1, finishes)
          else begin
            (* In sorted order the binding "f" never precedes its "s". *)
            Alcotest.(check (pair int int))
              "flow f follows its s" (1, 0) (starts, finishes);
            Hashtbl.replace flows id (starts, finishes + 1)
          end
        | _ -> ()))
    events;
  Hashtbl.iter
    (fun tid d ->
      Alcotest.(check int) (Printf.sprintf "track %d spans balanced" tid) 0 d)
    depth;
  (* Every emitted flow has both endpoints — half-open ones are culled into
     the footer count instead. *)
  Alcotest.(check bool) "some flow arrows" true (Hashtbl.length flows > 0);
  Hashtbl.iter
    (fun id (starts, finishes) ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "flow %d paired" id)
        (1, 1) (starts, finishes))
    flows;
  Alcotest.(check bool)
    "culled_flows footer present" true
    (Option.bind
       (Option.bind (Json.member "otherData" reparsed)
          (Json.member "culled_flows"))
       Json.to_int_opt
    <> None)

let test_metrics_snapshot_and_delta () =
  let p = Suite.micro_gsm_llp ~scale:1.0 () in
  let m = Voltron.Run.run ~n_cores:2 p in
  let metrics =
    Metrics.of_stats ~label:"gsm_llp" ~coherence:m.Voltron.Run.coh_stats
      ~network:m.Voltron.Run.net_stats m.Voltron.Run.stats
  in
  Alcotest.(check (option (float 1e-9)))
    "find cycles"
    (Some (float_of_int m.Voltron.Run.cycles))
    (Metrics.find "cycles" metrics);
  Alcotest.(check bool)
    "accesses flow through" true
    (metrics.Metrics.cache.Metrics.accesses > 0);
  let d = Metrics.delta ~before:metrics ~after:metrics in
  List.iter
    (fun (name, v) ->
      if name <> "net_max_occupancy" then
        Alcotest.(check int) ("self-delta " ^ name) 0 v)
    (Metrics.counters d);
  (* to_json carries every counter faithfully. *)
  let j = Metrics.to_json metrics in
  Alcotest.(check (option int))
    "json cycles"
    (Some m.Voltron.Run.cycles)
    (Option.bind
       (Option.bind (Json.member "machine" j) (Json.member "cycles"))
       Json.to_int_opt)

let test_sampler () =
  let p = (Suite.by_name "cjpeg").Suite.build ~scale:0.25 () in
  let machine = Config.default ~n_cores:4 in
  let compiled = Driver.compile ~machine p in
  let m = Machine.create machine compiled.Driver.executable in
  let sampler = Sampler.attach ~every:500 m in
  let result = Machine.run m in
  (match result.Machine.outcome with
  | Machine.Finished -> ()
  | _ -> Alcotest.fail "sampler run did not finish");
  let samples = Sampler.samples sampler in
  Alcotest.(check bool)
    "collected samples" true
    (List.length samples = result.Machine.cycles / 500);
  List.iteri
    (fun i s ->
      Alcotest.(check int)
        (Printf.sprintf "sample %d cycle" i)
        ((i + 1) * 500) s.Sampler.s_cycle;
      Alcotest.(check bool)
        (Printf.sprintf "sample %d occupancy in range" i)
        true
        (s.Sampler.s_occupancy >= 0. && s.Sampler.s_occupancy <= 1.))
    samples;
  Alcotest.(check bool) "attach rejects every<=0" true
    (match Sampler.attach ~every:0 m with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The sampler's bulk-window synthesis must be invisible: the same run with
   stall fast-forward off (forced per-cycle windows) yields the identical
   sample series. *)
let test_sampler_fast_forward_invariant () =
  let samples_with ~fast_forward =
    let p = (Suite.by_name "cjpeg").Suite.build ~scale:0.25 () in
    let machine = { (Config.default ~n_cores:4) with Config.fast_forward } in
    let compiled = Driver.compile ~machine p in
    let m = Machine.create machine compiled.Driver.executable in
    let sampler = Sampler.attach ~every:500 m in
    let result = Machine.run m in
    (match result.Machine.outcome with
    | Machine.Finished -> ()
    | _ -> Alcotest.fail "sampler ff run did not finish");
    Sampler.samples sampler
  in
  let ff = samples_with ~fast_forward:true in
  let slow = samples_with ~fast_forward:false in
  Alcotest.(check int) "same sample count" (List.length slow) (List.length ff);
  List.iter2
    (fun (a : Sampler.sample) (b : Sampler.sample) ->
      Alcotest.(check int) "sample cycle" a.Sampler.s_cycle b.Sampler.s_cycle;
      Alcotest.(check (float 1e-9)) "sample ipc" a.Sampler.s_ipc b.Sampler.s_ipc;
      Alcotest.(check int) "sample msgs" a.Sampler.s_msgs b.Sampler.s_msgs)
    slow ff

(* --- causal profiler ----------------------------------------------------- *)

let run_blame ?(tweak = fun c -> c) ~choice ~n_cores p =
  let machine = tweak (Config.default ~n_cores) in
  let compiled = Driver.compile ~machine ~choice p in
  let m = Machine.create machine compiled.Driver.executable in
  let b = Blame.attach m compiled in
  let result = Machine.run m in
  (match result.Machine.outcome with
  | Machine.Finished -> ()
  | _ -> Alcotest.fail "blame run did not finish");
  (b, result)

(* The reconciliation invariant over the whole suite x strategy x core
   matrix: the recording tiles every core's cycles, and the critical path's
   segments tile the run's cycle range, so its length IS the cycle count. *)
let test_critpath_reconciles () =
  let programs =
    List.map
      (fun (b : Suite.benchmark) ->
        (b.Suite.bench_name, b.Suite.build ~scale:0.2 ()))
      Suite.all
    @ [
        ("micro:gsm_llp", Suite.micro_gsm_llp ~scale:0.5 ());
        ("micro:gzip_strands", Suite.micro_gzip_strands ~scale:0.5 ());
        ("micro:gsm_ilp", Suite.micro_gsm_ilp ~scale:0.5 ());
      ]
  in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun (sname, choice) ->
          List.iter
            (fun n_cores ->
              let b, result = run_blame ~choice ~n_cores p in
              let label =
                Printf.sprintf "%s/%s/%d cores" name sname n_cores
              in
              (match Blame.coverage b with
              | Ok () -> ()
              | Error e -> Alcotest.fail (label ^ ": coverage hole: " ^ e));
              let cp = Critpath.compute b in
              Alcotest.(check int)
                (label ^ ": critical path = end-to-end cycles")
                result.Machine.cycles (Critpath.length cp);
              Alcotest.(check int)
                (label ^ ": total matches machine")
                result.Machine.cycles (Critpath.total cp))
            [ 2; 4 ])
        [
          ("seq", `Seq);
          ("ilp", `Ilp);
          ("tlp", `Tlp);
          ("llp", `Llp);
          ("hybrid", `Hybrid);
        ])
    programs

(* A sequential run's critical path never leaves core 0. *)
let test_serial_path_one_core () =
  let p = (Suite.by_name "cjpeg").Suite.build ~scale:0.25 () in
  let b, result = run_blame ~choice:`Seq ~n_cores:4 p in
  let cp = Critpath.compute b in
  List.iter
    (fun (g : Critpath.seg) ->
      if g.Critpath.g_core <> 0 then
        Alcotest.failf "path segment on core %d (%s) in a seq run"
          g.Critpath.g_core
          (Blame.kind_label g.Critpath.g_kind))
    (Critpath.segments cp);
  Alcotest.(check int) "seq path reconciles" result.Machine.cycles
    (Critpath.length cp)

(* Coz-style causality check: the what-if estimate from the recorded path
   must agree with a real rerun whose configuration changed the same way.
   Two edge classes (network hop latency, TM aborts) on two workloads
   each. *)
let test_whatif_agrees_with_rerun () =
  let measure ?(tweak = fun c -> c) ~choice ~n_cores p =
    let machine = tweak (Config.default ~n_cores) in
    let compiled = Driver.compile ~machine ~choice p in
    let m = Machine.create machine compiled.Driver.executable in
    let result = Machine.run m in
    (match result.Machine.outcome with
    | Machine.Finished -> ()
    | _ -> Alcotest.fail "rerun did not finish");
    result.Machine.cycles
  in
  let within_15pct label predicted measured =
    let err = Float.abs (predicted -. measured) /. measured in
    if err > 0.15 then
      Alcotest.failf "%s: predicted x%.3f vs measured x%.3f (%.1f%% off)"
        label predicted measured (100. *. err)
  in
  (* Network latency: free wires, predicted from the path vs rerun with
     net_hop_cost = 0. *)
  List.iter
    (fun (name, p) ->
      let b, result = run_blame ~choice:`Hybrid ~n_cores:4 p in
      let cp = Critpath.compute b in
      let base = float_of_int result.Machine.cycles in
      let predicted = base /. float_of_int (Critpath.whatif_net cp ~scale:0.) in
      let rerun =
        measure
          ~tweak:(fun c -> { c with Config.net_hop_cost = 0 })
          ~choice:`Hybrid ~n_cores:4 p
      in
      within_15pct (name ^ " net what-if") predicted
        (base /. float_of_int rerun))
    [
      ("micro:gzip_strands", Suite.micro_gzip_strands ~scale:1.0 ());
      ("164.gzip", (Suite.by_name "164.gzip").Suite.build ~scale:0.3 ());
    ];
  (* TM aborts: inject spurious aborts, predict their removal from that
     run's path, measure the injection-free run. *)
  List.iter
    (fun (name, p) ->
      let tweak c =
        {
          c with
          Config.fault =
            {
              Voltron_fault.Fault.disabled with
              Voltron_fault.Fault.tm_abort_rate = 0.9;
              fault_seed = 1;
            };
        }
      in
      let b, injected = run_blame ~tweak ~choice:`Hybrid ~n_cores:4 p in
      let cp = Critpath.compute b in
      Alcotest.(check int)
        (name ^ ": injected run reconciles")
        injected.Machine.cycles (Critpath.length cp);
      let inj = float_of_int injected.Machine.cycles in
      let predicted = inj /. float_of_int (Critpath.whatif_tm cp) in
      let clean = measure ~choice:`Hybrid ~n_cores:4 p in
      within_15pct (name ^ " tm what-if") predicted
        (inj /. float_of_int clean))
    [
      ("164.gzip", (Suite.by_name "164.gzip").Suite.build ~scale:0.3 ());
      ("175.vpr", (Suite.by_name "175.vpr").Suite.build ~scale:0.3 ());
    ]

(* The BLAME.json document parses back to the identical report. *)
let test_blame_report_roundtrip () =
  let p = (Suite.by_name "164.gzip").Suite.build ~scale:0.3 () in
  let b, _ = run_blame ~choice:`Hybrid ~n_cores:4 p in
  let cp = Critpath.compute b in
  let rep = Critpath.report ~bench:"164.gzip" ~strategy:"hybrid" cp in
  Alcotest.(check bool) "report has blame rows" true (rep.Critpath.r_rows <> []);
  match Json.parse (Json.to_string (Critpath.report_to_json rep)) with
  | Error e -> Alcotest.fail ("blame json does not parse: " ^ e)
  | Ok j -> (
    match Critpath.report_of_json j with
    | Error e -> Alcotest.fail ("blame report does not decode: " ^ e)
    | Ok rep' ->
      Alcotest.(check bool) "report roundtrips exactly" true (rep = rep'))

(* The recorder's side tables: TM per-region history and the cross-core
   wait/message matrices the DSWP rebalancing work needs. *)
let test_blame_side_tables () =
  let p = (Suite.by_name "164.gzip").Suite.build ~scale:0.3 () in
  let b, result = run_blame ~choice:`Hybrid ~n_cores:4 p in
  let tm = Blame.tm_regions b in
  Alcotest.(check bool) "tm history recorded" true (tm <> []);
  List.iter
    (fun (region, begins, commits, aborts) ->
      Alcotest.(check bool)
        (region ^ ": commits+aborts <= begins")
        true
        (commits + aborts <= begins && begins > 0))
    tm;
  let wait = Blame.wait_matrix b in
  let msgs = Blame.msgs_matrix b in
  Array.iteri
    (fun c row ->
      Alcotest.(check int) "no self-wait" 0 wait.(c).(c);
      Array.iter
        (fun cycles ->
          Alcotest.(check bool) "wait bounded by run" true
            (cycles >= 0 && cycles <= result.Machine.cycles))
        row)
    wait;
  let sent = Array.fold_left (Array.fold_left ( + )) 0 msgs in
  Alcotest.(check bool) "messages observed" true (sent > 0)

let () =
  Alcotest.run "obs"
    [
      ( "accounting",
        [
          Alcotest.test_case "per-core invariant" `Quick test_per_core_invariant;
          Alcotest.test_case "region attribution reconciles" `Quick
            test_region_attribution_reconciles;
        ] );
      ( "export",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_export;
          Alcotest.test_case "metrics snapshot and delta" `Quick
            test_metrics_snapshot_and_delta;
          Alcotest.test_case "sampler" `Quick test_sampler;
          Alcotest.test_case "sampler fast-forward invariant" `Quick
            test_sampler_fast_forward_invariant;
        ] );
      ( "causal",
        [
          Alcotest.test_case "critical path reconciles" `Quick
            test_critpath_reconciles;
          Alcotest.test_case "serial path stays on one core" `Quick
            test_serial_path_one_core;
          Alcotest.test_case "what-if agrees with rerun" `Quick
            test_whatif_agrees_with_rerun;
          Alcotest.test_case "blame report json roundtrip" `Quick
            test_blame_report_roundtrip;
          Alcotest.test_case "blame side tables" `Quick test_blame_side_tables;
        ] );
    ]
