(* Performance-safety tests.

   The simulator's hot-path machinery (predecoded images, the stall
   fast-forward, the allocation-free sweep) is licensed by one promise: no
   architecturally visible number changes. These tests hold it to that —
   a full differential sweep of the workload suite with fast-forward on
   vs. off, comparing outcome, cycle count, memory checksum, every Stats
   counter and every per-region attribution cell bit-for-bit — and pin
   the per-cycle minor-heap allocation to a budget so the sweep cannot
   quietly regress into a GC-bound loop. *)

module Suite = Voltron_workloads.Suite
module Stats = Voltron_machine.Stats
module Config = Voltron_machine.Config
module Machine = Voltron_machine.Machine
module Driver = Voltron_compiler.Driver
module Region_profile = Voltron_obs.Region_profile

let scale = 0.15

type snapshot = {
  outcome_tag : string;
  cycles : int;
  checksum : int;
  stats : Stats.t;
  regions : Region_profile.row list;
}

let outcome_tag (o : Machine.outcome) =
  match o with
  | Machine.Finished -> "finished"
  | Machine.Out_of_cycles -> "out-of-cycles"
  | Machine.Deadlock _ -> "deadlock"
  | Machine.Fault_limit _ -> "fault-limit"
  | Machine.Stopped _ -> "stopped"

let run_one ~ff ~choice ~cores program =
  let machine =
    { (Config.default ~n_cores:cores) with Config.fast_forward = ff }
  in
  let compiled = Driver.compile ~machine ~choice ~check:false program in
  let m = Machine.create machine compiled.Driver.executable in
  (* Attribution stays attached under fast-forward (bulk credit must land
     in the very same cells), so the differential covers it too. *)
  let rp = Region_profile.attach m compiled in
  let result = Machine.run m in
  {
    outcome_tag = outcome_tag result.Machine.outcome;
    cycles = result.Machine.cycles;
    checksum = result.Machine.checksum;
    stats = Machine.stats m;
    regions = Region_profile.rows rp;
  }

let choices =
  [ (`Seq, "seq"); (`Ilp, "ilp"); (`Tlp, "tlp"); (`Llp, "llp"); (`Hybrid, "hybrid") ]

(* Every benchmark x every strategy x {2, 4} cores: fast-forward on and
   off must be indistinguishable in everything but wall-clock. Structural
   equality is exact here: [Stats.t] and [Region_profile.row] are records
   of ints, strings and int arrays. *)
let test_differential () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let program = b.Suite.build ~scale () in
      List.iter
        (fun (choice, cname) ->
          List.iter
            (fun cores ->
              let label =
                Printf.sprintf "%s/%s/%d cores" b.Suite.bench_name cname cores
              in
              let fast = run_one ~ff:true ~choice ~cores program in
              let slow = run_one ~ff:false ~choice ~cores program in
              Alcotest.(check string)
                (label ^ " outcome") slow.outcome_tag fast.outcome_tag;
              Alcotest.(check int) (label ^ " cycles") slow.cycles fast.cycles;
              Alcotest.(check int)
                (label ^ " checksum") slow.checksum fast.checksum;
              Alcotest.(check bool)
                (label ^ " stats bit-identical") true (slow.stats = fast.stats);
              Alcotest.(check bool)
                (label ^ " attribution bit-identical") true
                (slow.regions = fast.regions))
            [ 2; 4 ])
        choices)
    Suite.all

(* Per-cycle minor-heap budget, in words. The sweep's residual allocations
   are small and bounded (a [Some wait] per blocked core-cycle, a [Some
   target] per taken branch, a [Some state] per cache probe, TM read/write
   set entries per transactional access); measured ~36 on this workload,
   and the budget is set with ~2x headroom so a regression that
   reintroduces per-cycle closures, lists or hashtables (tens to hundreds
   of words each) fails loudly while normal drift does not. *)
let alloc_budget_words_per_cycle = 80.0

let test_allocation_budget () =
  let b = Suite.by_name "gsmencode" in
  let program = b.Suite.build ~scale:0.5 () in
  (* Fast-forward off so every cycle takes the per-cycle path being
     measured; no attribution/tracer, matching the perf harness. *)
  let machine =
    { (Config.default ~n_cores:4) with Config.fast_forward = false }
  in
  let compiled = Driver.compile ~machine ~choice:`Hybrid ~check:false program in
  let m = Machine.create machine compiled.Driver.executable in
  let before = Gc.minor_words () in
  let result = Machine.run m in
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool) "run finished" true
    (result.Machine.outcome = Machine.Finished);
  let per_cycle = words /. float_of_int result.Machine.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f minor words/cycle within %.0f"
       per_cycle alloc_budget_words_per_cycle)
    true
    (per_cycle <= alloc_budget_words_per_cycle)

let () =
  Alcotest.run "perf"
    [
      ( "fast-forward",
        [ Alcotest.test_case "differential suite sweep" `Slow test_differential ] );
      ( "allocation",
        [ Alcotest.test_case "per-cycle budget" `Quick test_allocation_budget ] );
    ]
