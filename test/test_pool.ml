(* The work-stealing pool (lib/pool): the determinism contract — results
   by input index, jobs=1 as the serial reference, frontier-ordered emit
   — plus the concurrency behaviours a deadlock or lost task would break:
   exception propagation, nesting from worker domains, reuse after
   failure. The last two groups close the loop at the user level: a
   differential matrix and a whole fuzz campaign must be identical
   between -j 1 and -j 4, transcripts included. *)

module Pool = Voltron_pool.Pool
module Campaign = Voltron_gen.Campaign
module Gen = Voltron_gen.Gen
module Run = Voltron.Run
module Frontend = Voltron_lang.Frontend

(* --- parallel_map semantics ---------------------------------------------- *)

let test_order_preserved () =
  let n = 2000 in
  let f x =
    (* uneven work so completion order differs from input order *)
    let acc = ref x in
    for _ = 1 to 1 + (x mod 97) * 50 do
      acc := (!acc * 31) land 0xFFFF
    done;
    (x, !acc)
  in
  let xs = Array.init n (fun i -> i) in
  let serial = Array.map f xs in
  let par = Pool.parallel_map ~jobs:4 f xs in
  Alcotest.(check bool) "jobs=4 matches serial map" true (par = serial)

let test_serial_reference () =
  (* jobs=1 must be a plain left-to-right map: side effects in index
     order, no domains involved. *)
  let visited = ref [] in
  let f x =
    visited := x :: !visited;
    x * x
  in
  let xs = Array.init 100 (fun i -> i) in
  let r = Pool.parallel_map ~jobs:1 f xs in
  Alcotest.(check bool) "results" true (r = Array.map (fun x -> x * x) xs);
  Alcotest.(check (list int)) "left-to-right side-effect order"
    (List.init 100 (fun i -> i))
    (List.rev !visited)

let test_edge_sizes () =
  Alcotest.(check bool) "empty" true (Pool.parallel_map ~jobs:4 succ [||] = [||]);
  Alcotest.(check bool) "singleton" true
    (Pool.parallel_map ~jobs:4 succ [| 41 |] = [| 42 |])

let test_emit_ordered () =
  let n = 500 in
  let f x =
    let acc = ref x in
    for _ = 1 to 1 + (x mod 13) * 200 do
      acc := (!acc * 17) land 0xFFFF
    done;
    x
  in
  List.iter
    (fun jobs ->
      let emitted = ref [] in
      let r =
        Pool.parallel_map_emit ~jobs
          ~emit:(fun i v -> emitted := (i, v) :: !emitted)
          f
          (Array.init n (fun i -> i))
      in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d emits every cell" jobs)
        n
        (List.length !emitted);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d emits in index order with cell results" jobs)
        true
        (List.rev !emitted = List.init n (fun i -> (i, f i)));
      Alcotest.(check bool) "returned array intact" true
        (r = Array.init n (fun i -> i)))
    [ 1; 4 ]

let test_exception_propagates () =
  let f x = if x = 37 then failwith "boom" else x in
  (match Pool.parallel_map ~jobs:4 f (Array.init 200 (fun i -> i)) with
  | _ -> Alcotest.fail "expected the cell's exception"
  | exception Failure s -> Alcotest.(check string) "original exception" "boom" s);
  (* The pool survives a failed batch: the next map runs normally. *)
  let r = Pool.parallel_map ~jobs:4 succ (Array.init 200 (fun i -> i)) in
  Alcotest.(check bool) "usable after failure" true
    (r = Array.init 200 (fun i -> i + 1))

let test_emit_exception_propagates () =
  (match
     Pool.parallel_map_emit ~jobs:4
       ~emit:(fun i _ -> if i = 5 then failwith "emit-boom")
       (fun x -> x)
       (Array.init 50 (fun i -> i))
   with
  | _ -> Alcotest.fail "expected the emit exception"
  | exception Failure s ->
    Alcotest.(check string) "emit exception reaches caller" "emit-boom" s);
  let r = Pool.parallel_map ~jobs:4 succ [| 1; 2; 3 |] in
  Alcotest.(check bool) "usable after emit failure" true (r = [| 2; 3; 4 |])

let test_nested () =
  (* Outer cells run on worker domains; each runs its own parallel_map.
     Child tasks go onto the worker's own deque, so this must neither
     deadlock nor lose results. *)
  let inner x = Pool.parallel_map ~jobs:4 (fun y -> x + y) (Array.init 50 (fun i -> i)) in
  let outer = Pool.parallel_map ~jobs:4 inner (Array.init 8 (fun i -> i * 100)) in
  let expect = Array.init 8 (fun i -> Array.init 50 (fun j -> (i * 100) + j)) in
  Alcotest.(check bool) "nested results" true (outer = expect)

let test_default_jobs_env () =
  let saved = Sys.getenv_opt "VOLTRON_JOBS" in
  let restore () = Unix.putenv "VOLTRON_JOBS" (Option.value saved ~default:"") in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "VOLTRON_JOBS" "5";
      Alcotest.(check int) "VOLTRON_JOBS honoured" 5 (Pool.default_jobs ());
      let host = Domain.recommended_domain_count () in
      Unix.putenv "VOLTRON_JOBS" "0";
      Alcotest.(check int) "non-positive falls back to host" host
        (Pool.default_jobs ());
      Unix.putenv "VOLTRON_JOBS" "many";
      Alcotest.(check int) "garbage falls back to host" host
        (Pool.default_jobs ()))

(* --- determinism at the user level --------------------------------------- *)

let test_differential_jobs_identical () =
  let p = Gen.program ~seed:3 ~size:14 () in
  let hir =
    Frontend.parse_string ~name:p.Voltron_lang.Ast.prog_name (Gen.render p)
  in
  let d1 = Run.differential ~cores:[ 2; 4 ] ~jobs:1 hir in
  let d4 = Run.differential ~cores:[ 2; 4 ] ~jobs:4 hir in
  Alcotest.(check bool) "differential record identical at -j 1 and -j 4" true
    (d1 = d4)

(* A whole campaign — derived seeds, transcript, findings, run counters —
   must be byte-identical between jobs=1 and jobs=4 (the issue's
   acceptance bar). Seed 1 is clean over the default matrix, so this also
   re-checks that parallel runs stay divergence-free. *)
let test_fuzz_jobs_identical () =
  let campaign jobs =
    let buf = Buffer.create 4096 in
    let r =
      Campaign.run ~jobs ~seed:1 ~count:8 ~size:12 ~minimize_findings:false
        ~log:(fun s -> Buffer.add_string buf (s ^ "\n"))
        ()
    in
    (Buffer.contents buf, r)
  in
  let log1, r1 = campaign 1 in
  let log4, r4 = campaign 4 in
  Alcotest.(check string) "transcripts byte-identical" log1 log4;
  Alcotest.(check int) "programs" r1.Campaign.r_programs r4.Campaign.r_programs;
  Alcotest.(check int) "simulations" r1.Campaign.r_runs r4.Campaign.r_runs;
  Alcotest.(check int) "warnings" r1.Campaign.r_warnings r4.Campaign.r_warnings;
  Alcotest.(check bool) "findings identical" true
    (r1.Campaign.r_findings = r4.Campaign.r_findings)

let () =
  Alcotest.run "pool"
    [
      ( "parallel_map",
        [
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "jobs=1 is the serial reference" `Quick
            test_serial_reference;
          Alcotest.test_case "empty and singleton" `Quick test_edge_sizes;
          Alcotest.test_case "emit in index order" `Quick test_emit_ordered;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "emit exception propagates" `Quick
            test_emit_exception_propagates;
          Alcotest.test_case "nested maps" `Quick test_nested;
          Alcotest.test_case "default_jobs env override" `Quick
            test_default_jobs_env;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "differential -j invariant" `Slow
            test_differential_jobs_identical;
          Alcotest.test_case "fuzz campaign -j invariant" `Slow
            test_fuzz_jobs_identical;
        ] );
    ]
