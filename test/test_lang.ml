(* Tests for the VC front end: lexing, parsing (including error
   positions), elaboration scoping rules, end-to-end agreement with the
   hand-built IR, compile-and-verify of parsed programs, and a
   print/reparse round-trip property over random ASTs. *)

module Lexer = Voltron_lang.Lexer
module Parser = Voltron_lang.Parser
module Ast = Voltron_lang.Ast
module Frontend = Voltron_lang.Frontend
module Rng = Voltron_util.Rng

(* --- Lexer -------------------------------------------------------------------- *)

let tokens src = List.map fst (Lexer.tokenize src)

let test_lex_basic () =
  Alcotest.(check bool) "operators" true
    (tokens "a<<2>>=b&&c||!="
    = [
        Lexer.IDENT "a"; Lexer.SHL; Lexer.INT 2; Lexer.SHR; Lexer.ASSIGN;
        Lexer.IDENT "b"; Lexer.AMPAMP; Lexer.IDENT "c"; Lexer.PIPEPIPE;
        Lexer.NE; Lexer.EOF;
      ]);
  Alcotest.(check bool) "keywords vs idents" true
    (tokens "for forx if iffy"
    = [ Lexer.KW_FOR; Lexer.IDENT "forx"; Lexer.KW_IF; Lexer.IDENT "iffy"; Lexer.EOF ])

let test_lex_comments () =
  Alcotest.(check bool) "line and block comments" true
    (tokens "1 // x\n /* y \n z */ 2" = [ Lexer.INT 1; Lexer.INT 2; Lexer.EOF ])

let test_lex_positions () =
  match Lexer.tokenize "ab\n  cd" with
  | [ (_, p1); (_, p2); _ ] ->
    Alcotest.(check (pair int int)) "first" (1, 1) (p1.Ast.line, p1.Ast.col);
    Alcotest.(check (pair int int)) "second" (2, 3) (p2.Ast.line, p2.Ast.col)
  | _ -> Alcotest.fail "two tokens expected"

let test_lex_error () =
  Alcotest.(check bool) "bad char reported" true
    (try
       ignore (Lexer.tokenize "a @ b");
       false
     with Lexer.Error (p, _) -> p.Ast.line = 1 && p.Ast.col = 3)

let test_lex_unterminated_comment () =
  Alcotest.(check bool) "unterminated" true
    (try
       ignore (Lexer.tokenize "1 /* never closed");
       false
     with Lexer.Error (_, msg) -> msg = "unterminated block comment")

(* --- Parser -------------------------------------------------------------------- *)

let test_parse_precedence () =
  (* 1 + 2 * 3 < 4 << 1  parses as  (1 + (2*3)) < (4 << 1) *)
  match Parser.parse_expr "1 + 2 * 3 < 4 << 1" with
  | Ast.Bin (Ast.Lt, Ast.Bin (Ast.Add, _, Ast.Bin (Ast.Mul, _, _)),
      Ast.Bin (Ast.Shl, _, _)) ->
    ()
  | _ -> Alcotest.fail "wrong precedence"

let test_parse_ternary_nests () =
  match Parser.parse_expr "a ? b : c ? d : e" with
  | Ast.Ternary (_, Ast.Var ("b", _), Ast.Ternary (_, _, _)) -> ()
  | _ -> Alcotest.fail "ternary should right-associate"

let test_parse_left_assoc () =
  match Parser.parse_expr "10 - 3 - 2" with
  | Ast.Bin (Ast.Sub, Ast.Bin (Ast.Sub, Ast.Int 10, Ast.Int 3), Ast.Int 2) -> ()
  | _ -> Alcotest.fail "subtraction should left-associate"

let test_parse_program_shape () =
  let p =
    Parser.parse ~name:"t"
      "array a[8]; region r { var x = 1; for (i = 0; i < 8; i += 2) { a[i] = x; } }"
  in
  Alcotest.(check int) "one array" 1 (List.length p.Ast.decls);
  Alcotest.(check int) "one region" 1 (List.length p.Ast.regions);
  match (List.hd p.Ast.regions).Ast.reg_body with
  | [ Ast.Decl _; Ast.For { step = 2; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected region body"

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

let expect_parse_error src check_msg =
  match Parser.parse ~name:"t" src with
  | _ -> Alcotest.fail "parse should have failed"
  | exception Parser.Error (pos, msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions expectation" msg)
      true (check_msg msg);
    Alcotest.(check bool) "position is set" true (pos.Ast.line >= 1)

let test_parse_errors () =
  expect_parse_error "region r { var = 1; }" (fun m -> contains m "variable name");
  expect_parse_error "region r { for (i = 0; j < 8; i += 1) { } }" (fun m ->
      contains m "must test");
  expect_parse_error "region r { for (i = 0; i < 8; i += 0) { } }" (fun m ->
      contains m "positive");
  expect_parse_error "array a[4] = pi();" (fun m -> contains m "random")

(* --- Elaboration ---------------------------------------------------------------- *)

let expect_elab_error src check_msg =
  match Frontend.parse_string ~name:"t" src with
  | _ -> Alcotest.fail "elaboration should have failed"
  | exception Frontend.Error { msg; _ } ->
    Alcotest.(check bool) (Printf.sprintf "message %S" msg) true (check_msg msg)

let test_elab_scoping_errors () =
  expect_elab_error "region r { x = 1; }" (fun m -> contains m "unknown name");
  expect_elab_error "region r { for (i = 0; i < 4; i += 1) { i = 2; } }" (fun m ->
      contains m "loop variable");
  expect_elab_error "array a[4]; region r { a = 1; }" (fun m ->
      contains m "array");
  expect_elab_error "region r { var x = 1; var y = x[2]; }" (fun m ->
      contains m "scalar");
  (* Region locality: scalars do not leak into the next region. *)
  expect_elab_error "array a[4]; region r1 { var x = 1; a[0] = x; } region r2 { a[1] = x; }"
    (fun m -> contains m "unknown name")

(* Exact positions: the fuzzer's triage workflow jumps straight from a
   diagnostic to the offending token, so elaboration errors must carry
   the position of the name that failed, not of the enclosing statement. *)
let expect_error_at src ~line ~col check_msg =
  match Frontend.parse_string ~name:"t" src with
  | _ -> Alcotest.fail "elaboration should have failed"
  | exception Frontend.Error { line = l; col = c; msg } ->
    Alcotest.(check bool) (Printf.sprintf "message %S" msg) true (check_msg msg);
    Alcotest.(check (pair int int))
      (Printf.sprintf "position of %S" msg)
      (line, col) (l, c)

let test_elab_error_positions () =
  expect_error_at "region r {\n  x = 1;\n}" ~line:2 ~col:3 (fun m ->
      contains m "unknown name 'x'");
  expect_error_at "region r {\n  var y = 1 + zz;\n}" ~line:2 ~col:15 (fun m ->
      contains m "unknown name 'zz'");
  expect_error_at "region r {\n  for (i = 0; i < 4; i += 1) {\n    i = 2;\n  }\n}"
    ~line:3 ~col:5 (fun m -> contains m "loop variable 'i'");
  (* The loop variable's scope ends with the loop body. *)
  expect_error_at "region r {\n  for (i = 0; i < 4; i += 1) {\n  }\n  var y = i;\n}"
    ~line:4 ~col:11 (fun m -> contains m "unknown name 'i'");
  (* A declaration inside an if-branch does not escape the branch. *)
  expect_error_at "region r {\n  if (1) {\n    var x = 1;\n  } else {\n  }\n  x = 2;\n}"
    ~line:6 ~col:3 (fun m -> contains m "unknown name 'x'");
  (* ... nor does one inside a do/while body escape the loop. *)
  expect_error_at
    "region r {\n  var t = 2;\n  do {\n    var w = 1;\n    t = t - 1;\n  } while ((t > 0));\n  var z = w;\n}"
    ~line:7 ~col:11 (fun m -> contains m "unknown name 'w'");
  expect_error_at "array a[4];\nregion r {\n  a = 1;\n}" ~line:3 ~col:3 (fun m ->
      contains m "array");
  expect_error_at "region r {\n  var x = 1;\n  var y = x[2];\n}" ~line:3 ~col:11
    (fun m -> contains m "scalar");
  expect_error_at
    "array a[4];\nregion r1 {\n  var x = 1;\n}\nregion r2 {\n  a[0] = x;\n}"
    ~line:6 ~col:10 (fun m -> contains m "unknown name 'x'")

(* Shadowing a loop variable with a scalar declaration is legal and lifts
   the no-assignment rule for the inner name — the assignment targets the
   new scalar while the loop's own counter is untouched. (The fuzzer
   generator leans on exactly this rule; a seed-103 campaign crash traced
   to its env handling of this case.) *)
let test_elab_shadow_loop_var () =
  let p =
    Frontend.parse_string ~name:"t"
      "array out[4];\n\
       region r {\n\
         var s = 0;\n\
         for (i = 0; i < 3; i += 1) {\n\
           var i = 10;\n\
           i = i + 1;\n\
           s = s + i;\n\
         }\n\
         out[0] = s;\n\
       }"
  in
  let r = Voltron_ir.Interp.run p in
  Alcotest.(check int) "three iterations of 11" 33
    (Voltron_mem.Memory.read r.Voltron_ir.Interp.memory 0)

let test_elab_shadowing () =
  (* Inner declarations shadow without clobbering the outer binding. *)
  let p =
    Frontend.parse_string ~name:"t"
      "array out[4];\n\
       region r {\n\
         var x = 1;\n\
         if (1) { var x = 10; out[0] = x; } else { }\n\
         out[1] = x;\n\
       }"
  in
  let r = Voltron_ir.Interp.run p in
  Alcotest.(check int) "inner x" 10 (Voltron_mem.Memory.read r.Voltron_ir.Interp.memory 0);
  Alcotest.(check int) "outer x intact" 1
    (Voltron_mem.Memory.read r.Voltron_ir.Interp.memory 1)

let test_elab_semantics () =
  let p =
    Frontend.parse_string ~name:"t"
      "array out[8];\n\
       region r {\n\
         out[0] = 7 / 2;\n\
         out[1] = 7 % 2;\n\
         out[2] = 5 / 0;          // total semantics: 0\n\
         out[3] = (3 < 5) && (2 > 1);\n\
         out[4] = 0 || 42;        // normalised to 0/1\n\
         out[5] = 1 ? 11 : 22;\n\
         out[6] = -(3 - 10);\n\
         out[7] = (1 << 5) >> 2;\n\
       }"
  in
  let r = Voltron_ir.Interp.run p in
  let read i = Voltron_mem.Memory.read r.Voltron_ir.Interp.memory i in
  Alcotest.(check (list int)) "values" [ 3; 1; 0; 1; 1; 11; 7; 8 ]
    (List.init 8 read)

let test_elab_matches_builder () =
  (* The same computation written in VC and against the Builder agree. *)
  let vc =
    Frontend.parse_string ~name:"t"
      "array src[64] = fill(i * 3 % 17);\n\
       array dst[64];\n\
       region main {\n\
         var acc = 0;\n\
         for (i = 0; i < 64; i += 1) {\n\
           var v = src[i];\n\
           dst[i] = v * v + 1;\n\
           acc = acc + v;\n\
         }\n\
         dst[0] = acc;\n\
       }"
  in
  let module B = Voltron_ir.Builder in
  let b = B.create "t" in
  let src = B.array b ~name:"src" ~size:64 ~init:(fun i -> i * 3 mod 17) () in
  let dst = B.array b ~name:"dst" ~size:64 () in
  B.region b "main" (fun () ->
      let acc = B.fresh b in
      B.assign b acc (Voltron_ir.Hir.Operand (B.imm 0));
      B.for_ b ~from:(B.imm 0) ~limit:(B.imm 64) (fun i ->
          let v = B.load b src i in
          B.store b dst i (B.add b (B.mul b v v) (B.imm 1));
          B.assign b acc (Voltron_ir.Hir.Alu (Voltron_isa.Inst.Add, Voltron_ir.Hir.Reg acc, v)));
      B.store b dst (B.imm 0) (Voltron_ir.Hir.Reg acc));
  let built = B.finish b in
  let r1 = Voltron_ir.Interp.run vc and r2 = Voltron_ir.Interp.run built in
  Alcotest.(check int) "same memory image" r1.Voltron_ir.Interp.checksum
    r2.Voltron_ir.Interp.checksum

let find_example file =
  let candidates =
    [
      "../examples/programs/" ^ file;  (* dune runtest cwd *)
      "examples/programs/" ^ file;  (* repository root *)
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.fail ("cannot locate example " ^ file)

let test_example_files_compile_and_verify () =
  List.iter
    (fun file ->
      let path = find_example file in
      let p = Frontend.parse_file path in
      List.iter
        (fun choice ->
          let m = Voltron.Run.run ~choice ~n_cores:4 p in
          Alcotest.(check bool) (path ^ " verified") true m.Voltron.Run.verified)
        [ `Seq; `Hybrid ])
    [ "gsm_fig7.vc"; "histogram.vc"; "filter.vc"; "checksum.vc" ]

(* Assignment fusion: a VC reduction must elaborate to the accumulator
   shape the DOALL classifier recognises (sum = sum + c as one statement,
   not a copy through a temporary). *)
let test_vc_reduction_is_doall () =
  let p =
    Frontend.parse_string ~name:"t"
      "array src[256] = fill(i % 97);\n\
       array out[4];\n\
       region reduce {\n\
         var sum = 0;\n\
         for (i = 0; i < 256; i += 1) { sum = sum + src[i]; }\n\
         out[0] = sum;\n\
       }"
  in
  let machine = Voltron_machine.Config.default ~n_cores:4 in
  let profile = Voltron_analysis.Profile.collect p in
  let plan = Voltron_compiler.Select.plan ~machine ~profile `Hybrid p in
  match plan with
  | [ pr ] -> (
    match pr.Voltron_compiler.Select.pr_strategy with
    | Voltron_compiler.Codegen.Doall { dp_accumulators = [ _ ]; _ } -> ()
    | s ->
      Alcotest.fail
        ("expected doall with one accumulator, got "
        ^ Voltron_compiler.Select.strategy_name s))
  | _ -> Alcotest.fail "one region expected"

(* --- Round trip property ---------------------------------------------------------- *)

let random_expr rng depth =
  let rec go depth =
    if depth = 0 then
      if Rng.bool rng then Ast.Int (Rng.in_range rng 0 99)
      else Ast.Var ("x", { Ast.line = 0; col = 0 })
    else
      match Rng.int rng 4 with
      | 0 ->
        let ops =
          [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Rem; Ast.And; Ast.Or;
             Ast.Xor; Ast.Shl; Ast.Shr; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge;
             Ast.Eq; Ast.Ne; Ast.Land; Ast.Lor |]
        in
        Ast.Bin (Rng.pick rng ops, go (depth - 1), go (depth - 1))
      | 1 -> Ast.Neg (go (depth - 1))
      | 2 -> Ast.Ternary (go (depth - 1), go (depth - 1), go (depth - 1))
      | _ -> Ast.Index ("a", go (depth - 1), { Ast.line = 0; col = 0 })
  in
  go depth

let rec strip_expr (e : Ast.expr) : Ast.expr =
  let zero = { Ast.line = 0; col = 0 } in
  match e with
  | Ast.Int i -> Ast.Int i
  | Ast.Var (x, _) -> Ast.Var (x, zero)
  | Ast.Index (a, i, _) -> Ast.Index (a, strip_expr i, zero)
  | Ast.Bin (op, x, y) -> Ast.Bin (op, strip_expr x, strip_expr y)
  | Ast.Neg x -> Ast.Neg (strip_expr x)
  | Ast.Ternary (c, t, f) -> Ast.Ternary (strip_expr c, strip_expr t, strip_expr f)

let test_expr_roundtrip =
  QCheck.Test.make ~name:"print/reparse expression round trip" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let e = random_expr rng (Rng.in_range rng 1 4) in
      let text = Format.asprintf "%a" Ast.pp_expr e in
      let e' = Parser.parse_expr text in
      strip_expr e' = strip_expr e)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lex_basic;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "positions" `Quick test_lex_positions;
          Alcotest.test_case "bad char" `Quick test_lex_error;
          Alcotest.test_case "unterminated comment" `Quick test_lex_unterminated_comment;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "ternary" `Quick test_parse_ternary_nests;
          Alcotest.test_case "associativity" `Quick test_parse_left_assoc;
          Alcotest.test_case "program shape" `Quick test_parse_program_shape;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "elab",
        [
          Alcotest.test_case "scoping errors" `Quick test_elab_scoping_errors;
          Alcotest.test_case "error positions" `Quick test_elab_error_positions;
          Alcotest.test_case "shadowing" `Quick test_elab_shadowing;
          Alcotest.test_case "loop-var shadowing" `Quick test_elab_shadow_loop_var;
          Alcotest.test_case "semantics" `Quick test_elab_semantics;
          Alcotest.test_case "matches builder" `Quick test_elab_matches_builder;
          Alcotest.test_case "example files" `Slow test_example_files_compile_and_verify;
          Alcotest.test_case "reduction is doall" `Quick test_vc_reduction_is_doall;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest test_expr_roundtrip ]);
    ]
