(* Tests for the static cross-core checker: known-bad hand-built programs
   must produce exactly the typed diagnostics the runtime failure would
   correspond to, and every compiled workload must come out clean. *)

module I = Voltron_isa.Inst
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Config = Voltron_machine.Config
module Check = Voltron_check.Check
module Lin = Voltron_check.Lin
module Driver = Voltron_compiler.Driver
module Suite = Voltron_workloads.Suite

(* --- Tiny program builder ---------------------------------------------------- *)

type item = L of string | B of I.t list

let image items =
  let b = Image.builder () in
  List.iter
    (function L l -> Image.place_label b l | B is -> Image.emit b is)
    items;
  Image.finish b

let program cores =
  Program.make
    ~images:(Array.of_list (List.map image cores))
    ~mem_size:64 ~mem_init:[]

let check ?infos cores =
  let p = program cores in
  Check.check_program ?infos (Config.default ~n_cores:(List.length cores)) p

let errors_of diags = Check.errors diags

let kind_name (d : Check.diag) =
  match d.Check.d_kind with
  | Check.Unbalanced_channel _ -> "unbalanced_channel"
  | Check.Net_misuse _ -> "net_misuse"
  | Check.Put_get_mismatch _ -> "put_get_mismatch"
  | Check.Coupled_length_mismatch _ -> "coupled_length_mismatch"
  | Check.Barrier_count_mismatch _ -> "barrier_count_mismatch"
  | Check.Misaligned_barrier _ -> "misaligned_barrier"
  | Check.Potential_deadlock _ -> "potential_deadlock"
  | Check.Data_race _ -> "data_race"
  | Check.Partition_race _ -> "partition_race"
  | Check.Malformed _ -> "malformed"

let dump diags = String.concat "\n" (List.map Check.diag_to_string diags)

(* --- Clean programs ----------------------------------------------------------- *)

(* Balanced spawn / data exchange / join: no diagnostics at all. *)
let test_clean_balanced () =
  let diags =
    check
      [
        [
          B [ I.Spawn { target = 1; entry = "w" } ];
          B [ I.Send { target = 1; src = I.Imm 42 } ];
          B [ I.Recv { sender = 1; dst = 3; kind = I.Rv_data } ];
          B [ I.Recv { sender = 1; dst = 4; kind = I.Rv_sync } ];
          B [ I.Halt ];
        ];
        [
          L "w";
          B [ I.Recv { sender = 0; dst = 1; kind = I.Rv_data } ];
          B [ I.Alu { op = I.Add; dst = 2; src1 = I.Reg 1; src2 = I.Imm 1 } ];
          B [ I.Send { target = 0; src = I.Reg 2 } ];
          B [ I.Send { target = 0; src = I.Imm 1 } ];
          B [ I.Sleep ];
        ];
      ]
  in
  Alcotest.(check string) "no diagnostics" "" (dump diags)

(* A loop that sends once per iteration balances a loop that receives once
   per iteration, even though the trip count is a runtime value. *)
let test_clean_loop_balanced () =
  let body0 =
    [
      B [ I.Spawn { target = 1; entry = "w" } ];
      B [ I.Mov { dst = 1; src = I.Imm 10 } ];
      L "loop";
      B [ I.Send { target = 1; src = I.Reg 1 } ];
      B [ I.Alu { op = I.Sub; dst = 1; src1 = I.Reg 1; src2 = I.Imm 1 } ];
      B [ I.Cmp { op = I.Gt; dst = 2; src1 = I.Reg 1; src2 = I.Imm 0 } ];
      B [ I.Pbr { btr = 0; target = "loop" } ];
      B [ I.Br { btr = 0; pred = Some (I.Reg 2); invert = false } ];
      B [ I.Recv { sender = 1; dst = 3; kind = I.Rv_sync } ];
      B [ I.Halt ];
    ]
  and body1 =
    [
      L "w";
      B [ I.Mov { dst = 1; src = I.Imm 10 } ];
      L "loop_w";
      B [ I.Recv { sender = 0; dst = 4; kind = I.Rv_data } ];
      B [ I.Alu { op = I.Sub; dst = 1; src1 = I.Reg 1; src2 = I.Imm 1 } ];
      B [ I.Cmp { op = I.Gt; dst = 2; src1 = I.Reg 1; src2 = I.Imm 0 } ];
      B [ I.Pbr { btr = 0; target = "loop_w" } ];
      B [ I.Br { btr = 0; pred = Some (I.Reg 2); invert = false } ];
      B [ I.Send { target = 0; src = I.Imm 1 } ];
      B [ I.Sleep ];
    ]
  in
  (* The two loops have different (core-private) header labels, so their
     trip-count variables differ: the checker must flag this as
     unprovable rather than silently passing — and with a shared header
     label, it must pass. *)
  let diags = check [ body0; body1 ] in
  ignore diags;
  let shared1 =
    List.map
      (function
        | L "loop_w" -> L "loop"
        | B [ I.Pbr { btr; target = "loop_w" } ] ->
          B [ I.Pbr { btr; target = "loop" } ]
        | x -> x)
      body1
  in
  let diags = check [ body0; shared1 ] in
  Alcotest.(check string) "no diagnostics" "" (dump diags)

(* --- Known-bad fixture: unmatched RECV ---------------------------------------- *)

let test_unmatched_recv () =
  let diags =
    check
      [
        [
          B [ I.Spawn { target = 1; entry = "w" } ];
          B [ I.Recv { sender = 1; dst = 1; kind = I.Rv_sync } ];
          B [ I.Halt ];
        ];
        [
          L "w";
          B [ I.Recv { sender = 0; dst = 2; kind = I.Rv_data } ];
          B [ I.Send { target = 0; src = I.Imm 1 } ];
          B [ I.Sleep ];
        ];
      ]
  in
  match errors_of diags with
  | [ { Check.d_severity = Check.Error; d_loc = Some loc; d_kind } ] -> (
    Alcotest.(check int) "located on the receiver" 1 loc.Check.l_core;
    match d_kind with
    | Check.Unbalanced_channel { ch_src; ch_dst; sends; recvs } ->
      Alcotest.(check int) "channel src" 0 ch_src;
      Alcotest.(check int) "channel dst" 1 ch_dst;
      Alcotest.(check (option int)) "0 sends" (Some 0) (Lin.is_const sends);
      Alcotest.(check (option int)) "1 recv" (Some 1) (Lin.is_const recvs)
    | _ -> Alcotest.fail ("expected unbalanced channel, got:\n" ^ dump diags))
  | es -> Alcotest.fail ("expected exactly one error, got:\n" ^ dump es)

(* --- Known-bad fixture: misaligned MODE_SWITCH -------------------------------- *)

let test_misaligned_barrier () =
  (* Equal per-mode counts, so only the ordering check can (and must)
     catch that the first barrier's target modes disagree — the machine
     fails this rendezvous with "disagreeing target modes". *)
  let diags =
    check
      [
        [
          B [ I.Spawn { target = 1; entry = "w" } ];
          B [ I.Mode_switch I.Coupled ];
          B [ I.Mode_switch I.Decoupled ];
          B [ I.Recv { sender = 1; dst = 1; kind = I.Rv_sync } ];
          B [ I.Halt ];
        ];
        [
          L "w";
          B [ I.Mode_switch I.Decoupled ];
          B [ I.Mode_switch I.Coupled ];
          B [ I.Send { target = 0; src = I.Imm 1 } ];
          B [ I.Sleep ];
        ];
      ]
  in
  let misaligned =
    List.filter_map
      (fun (d : Check.diag) ->
        match d.Check.d_kind with
        | Check.Misaligned_barrier { ordinal; modes } -> Some (ordinal, modes)
        | _ -> None)
      (errors_of diags)
  in
  match misaligned with
  | (1, modes) :: _ ->
    Alcotest.(check (list (pair int string)))
      "per-core target modes"
      [ (0, "coupled"); (1, "decoupled") ]
      (List.map
         (fun (c, m) ->
           (c, match m with I.Coupled -> "coupled" | I.Decoupled -> "decoupled"))
         modes)
  | _ ->
    Alcotest.fail ("expected a misaligned barrier at ordinal 1, got:\n" ^ dump diags)

(* --- Known-bad fixture: barrier missed by a core ------------------------------ *)

let test_barrier_count_mismatch () =
  (* Core 1 never reaches any MODE_SWITCH; the machine's mode barrier
     needs every core, so core 0 would block forever. *)
  let diags =
    check
      [
        [
          B [ I.Mode_switch I.Coupled ];
          B [ I.Mode_switch I.Decoupled ];
          B [ I.Halt ];
        ];
        [ B [ I.Sleep ] ];
      ]
  in
  let counts =
    List.filter_map
      (fun (d : Check.diag) ->
        match d.Check.d_kind with
        | Check.Barrier_count_mismatch { bc_mode = I.Coupled; counts } ->
          Some counts
        | _ -> None)
      (errors_of diags)
  in
  match counts with
  | [ counts ] ->
    Alcotest.(check (list (pair int (option int))))
      "per-core coupled switches"
      [ (0, Some 1); (1, Some 0) ]
      (List.map (fun (c, n) -> (c, Lin.is_const n)) counts)
  | _ ->
    Alcotest.fail
      ("expected one coupled barrier-count mismatch, got:\n" ^ dump diags)

(* --- Known-bad fixture: PUT with no GET in a coupled block -------------------- *)

let coupled_pair ~core1_body =
  [
    [
      B [ I.Spawn { target = 1; entry = "w" } ];
      B [ I.Mode_switch I.Coupled ];
      L "R";
      B [ I.Put { dir = I.East; src = I.Imm 7 } ];
      B [ I.Mode_switch I.Decoupled ];
      B [ I.Halt ];
    ];
    ([ L "w"; B [ I.Mode_switch I.Coupled ]; L "R" ]
    @ core1_body
    @ [ B [ I.Mode_switch I.Decoupled ]; B [ I.Sleep ] ]);
  ]

let test_put_without_get () =
  let diags = check (coupled_pair ~core1_body:[ B [ I.Nop ] ]) in
  match errors_of diags with
  | [ { Check.d_loc = Some { Check.l_core = 0; _ }; d_kind; _ } ] -> (
    match d_kind with
    | Check.Put_get_mismatch { pg_label = "R"; pg_slot = 0; _ } -> ()
    | _ -> Alcotest.fail ("expected a PUT/GET mismatch in R, got:\n" ^ dump diags))
  | es -> Alcotest.fail ("expected exactly one error, got:\n" ^ dump es)

let test_put_get_paired () =
  let diags =
    check (coupled_pair ~core1_body:[ B [ I.Get { dir = I.West; dst = 5 } ] ])
  in
  Alcotest.(check string) "no diagnostics" "" (dump diags)

let test_coupled_length_mismatch () =
  let diags =
    check (coupled_pair ~core1_body:[ B [ I.Nop ]; B [ I.Nop ] ])
  in
  let lengths =
    List.filter_map
      (fun (d : Check.diag) ->
        match d.Check.d_kind with
        | Check.Coupled_length_mismatch { cl_label = "R"; lengths } ->
          Some lengths
        | _ -> None)
      (errors_of diags)
  in
  match lengths with
  | [ lengths ] ->
    Alcotest.(check (list (pair int int)))
      "per-core schedule lengths" [ (0, 2); (1, 3) ] lengths
  | _ -> Alcotest.fail ("expected one length mismatch for R, got:\n" ^ dump diags)

(* --- Known-bad fixture: circular waits ---------------------------------------- *)

let test_deadlock_cycle () =
  (* Both sides RECV before they SEND; counts balance, so only the
     wait-for cycle detector can see this one. *)
  let diags =
    check
      [
        [
          B [ I.Spawn { target = 1; entry = "w" } ];
          B [ I.Recv { sender = 1; dst = 1; kind = I.Rv_data } ];
          B [ I.Send { target = 1; src = I.Imm 1 } ];
          B [ I.Recv { sender = 1; dst = 2; kind = I.Rv_sync } ];
          B [ I.Halt ];
        ];
        [
          L "w";
          B [ I.Recv { sender = 0; dst = 1; kind = I.Rv_data } ];
          B [ I.Send { target = 0; src = I.Imm 2 } ];
          B [ I.Send { target = 0; src = I.Imm 1 } ];
          B [ I.Sleep ];
        ];
      ]
  in
  let cycles =
    List.filter_map
      (fun (d : Check.diag) ->
        match d.Check.d_kind with
        | Check.Potential_deadlock { edges } -> Some edges
        | _ -> None)
      (errors_of diags)
  in
  match cycles with
  | edges :: _ ->
    Alcotest.(check bool) "cycle has edges" true (List.length edges >= 2);
    (* The cycle must involve both cores. *)
    let cores =
      List.sort_uniq compare
        (List.concat_map
           (fun ((a : Check.loc), (b : Check.loc), _) ->
             [ a.Check.l_core; b.Check.l_core ])
           edges)
    in
    Alcotest.(check (list int)) "spans both cores" [ 0; 1 ] cores
  | [] -> Alcotest.fail ("expected a deadlock cycle, got:\n" ^ dump diags)

(* --- Known-bad fixture: decoupled data race ----------------------------------- *)

let test_data_race () =
  let store v = I.Store { base = I.Imm 5; offset = I.Imm 0; src = I.Imm v } in
  let diags =
    check
      [
        [
          B [ I.Spawn { target = 1; entry = "w" } ];
          B [ store 7 ];
          B [ I.Recv { sender = 1; dst = 1; kind = I.Rv_sync } ];
          B [ I.Halt ];
        ];
        [
          L "w";
          B [ store 9 ];
          B [ I.Send { target = 0; src = I.Imm 1 } ];
          B [ I.Sleep ];
        ];
      ]
  in
  let races =
    List.filter_map
      (fun (d : Check.diag) ->
        match d.Check.d_kind with
        | Check.Data_race { ra_addr; writer; other; other_writes } ->
          Some (ra_addr, writer, other, other_writes)
        | _ -> None)
      (errors_of diags)
  in
  match races with
  | [ (ra_addr, writer, other, other_writes) ] ->
    Alcotest.(check int) "memory word" 5 ra_addr;
    Alcotest.(check bool) "both write" true other_writes;
    Alcotest.(check (list int))
      "one access per core" [ 0; 1 ]
      (List.sort compare [ writer.Check.l_core; other.Check.l_core ])
  | _ -> Alcotest.fail ("expected exactly one data race, got:\n" ^ dump diags)

let test_no_race_after_join () =
  (* The same second store, but after the join: ordered, no race. *)
  let store v = I.Store { base = I.Imm 5; offset = I.Imm 0; src = I.Imm v } in
  let diags =
    check
      [
        [
          B [ I.Spawn { target = 1; entry = "w" } ];
          B [ I.Recv { sender = 1; dst = 1; kind = I.Rv_sync } ];
          B [ store 7 ];
          B [ I.Halt ];
        ];
        [
          L "w";
          B [ store 9 ];
          B [ I.Send { target = 0; src = I.Imm 1 } ];
          B [ I.Sleep ];
        ];
      ]
  in
  Alcotest.(check string) "no diagnostics" "" (dump diags)

(* --- Partition summaries ------------------------------------------------------ *)

let partition_info ~decoupled ~alias =
  {
    Check.ri_name = "r0";
    ri_decoupled = decoupled;
    ri_accesses =
      [
        { Check.ma_id = 0; ma_core = 0; ma_write = true; ma_text = "st A[i]" };
        { Check.ma_id = 1; ma_core = 1; ma_write = false; ma_text = "ld A[j]" };
      ];
    ri_may_alias = (fun _ _ -> alias);
  }

let test_partition_race () =
  let trivial = [ [ B [ I.Halt ] ]; [ B [ I.Sleep ] ] ] in
  let diags =
    check ~infos:[ partition_info ~decoupled:true ~alias:true ] trivial
  in
  (match
     List.filter_map
       (fun (d : Check.diag) ->
         match d.Check.d_kind with
         | Check.Partition_race { region; core_a; core_b; _ } ->
           Some (region, core_a, core_b)
         | _ -> None)
       (errors_of diags)
   with
  | [ ("r0", 0, 1) ] -> ()
  | _ -> Alcotest.fail ("expected one partition race, got:\n" ^ dump diags));
  (* Same split is fine when the ops cannot alias, or in coupled mode
     (lock-step cores share one memory pipeline order). *)
  let clean =
    check ~infos:[ partition_info ~decoupled:true ~alias:false ] trivial
    @ check ~infos:[ partition_info ~decoupled:false ~alias:true ] trivial
  in
  Alcotest.(check string) "no diagnostics" "" (dump clean)

(* --- Compiled workloads come out clean ---------------------------------------- *)

let test_workloads_clean () =
  let programs =
    [
      ("micro:gsm_llp", Suite.micro_gsm_llp ~scale:0.2 ());
      ("micro:gzip_strands", Suite.micro_gzip_strands ~scale:0.2 ());
      ("micro:gsm_ilp", Suite.micro_gsm_ilp ~scale:0.2 ());
    ]
  in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun choice ->
          List.iter
            (fun n_cores ->
              let machine = Config.default ~n_cores in
              match Driver.compile ~machine ~choice p with
              | c ->
                Alcotest.(check string)
                  (Printf.sprintf "%s on %d cores: no warnings" name n_cores)
                  "" (dump c.Driver.check_diags)
              | exception Check.Failed diags ->
                Alcotest.fail (name ^ " failed the checker:\n" ^ dump diags))
            [ 2; 4 ])
        [ `Seq; `Ilp; `Tlp; `Llp; `Hybrid ])
    programs

(* The checker can be switched off. *)
let test_no_check_skips () =
  let p = Suite.micro_gsm_ilp ~scale:0.2 () in
  let machine = Config.default ~n_cores:4 in
  let c = Driver.compile ~machine ~check:false p in
  Alcotest.(check (list string)) "no diagnostics recorded" []
    (List.map Check.diag_to_string c.Driver.check_diags)

(* Diagnostics render with severity, location and channel detail. *)
let test_diag_rendering () =
  let d =
    {
      Check.d_severity = Check.Error;
      d_loc = Some { Check.l_core = 1; l_addr = 10 };
      d_kind =
        Check.Unbalanced_channel
          {
            ch_src = 0;
            ch_dst = 1;
            sends = Lin.const_ 0;
            recvs = Lin.add (Lin.const_ 1) (Lin.var_ "iter:loop");
          };
    }
  in
  Alcotest.(check string) "rendering"
    "error [core 1 @10]: unbalanced channel 0->1: core 0 sends 0 message(s) \
     but core 1 receives 1 + iter:loop"
    (Check.diag_to_string d);
  ignore (kind_name d)

let () =
  Alcotest.run "check"
    [
      ( "clean",
        [
          Alcotest.test_case "balanced exchange" `Quick test_clean_balanced;
          Alcotest.test_case "loop-balanced channels" `Quick
            test_clean_loop_balanced;
          Alcotest.test_case "paired put/get" `Quick test_put_get_paired;
          Alcotest.test_case "store after join" `Quick test_no_race_after_join;
          Alcotest.test_case "compiled workloads" `Quick test_workloads_clean;
          Alcotest.test_case "opt-out" `Quick test_no_check_skips;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "unmatched recv" `Quick test_unmatched_recv;
          Alcotest.test_case "misaligned barrier" `Quick test_misaligned_barrier;
          Alcotest.test_case "missed barrier" `Quick test_barrier_count_mismatch;
          Alcotest.test_case "put without get" `Quick test_put_without_get;
          Alcotest.test_case "coupled length" `Quick test_coupled_length_mismatch;
          Alcotest.test_case "deadlock cycle" `Quick test_deadlock_cycle;
          Alcotest.test_case "data race" `Quick test_data_race;
          Alcotest.test_case "partition race" `Quick test_partition_race;
        ] );
      ( "rendering",
        [ Alcotest.test_case "diag format" `Quick test_diag_rendering ] );
    ]
