(* Unit and property tests for voltron_util: RNG determinism, Vec
   behaviour, statistics, table rendering, and digraph algorithms (Tarjan
   SCC, topological sort). *)

module Rng = Voltron_util.Rng
module Vec = Voltron_util.Vec
module Stat = Voltron_util.Stat
module Table = Voltron_util.Table
module Digraph = Voltron_util.Digraph

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let y = Rng.in_range r 5 9 in
    Alcotest.(check bool) "in closed range" true (y >= 5 && y <= 9)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a 0 in
  let xs = List.init 10 (fun _ -> Rng.next a) in
  let ys = List.init 10 (fun _ -> Rng.next b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_split_pure () =
  (* split must not advance the parent, and must be a pure function of
     (parent state, index). *)
  let a = Rng.create 42 and b = Rng.create 42 in
  let c1 = Rng.split a 5 and c2 = Rng.split a 5 in
  Alcotest.(check int) "same child stream" (Rng.next c1) (Rng.next c2);
  ignore (Rng.split a 7);
  for _ = 1 to 20 do
    Alcotest.(check int) "parent unchanged by split" (Rng.next a) (Rng.next b)
  done

let test_rng_split_statistical () =
  (* Statistical independence sanity: across 1000 sibling children of one
     campaign seed, first outputs are pairwise distinct, every output bit
     is roughly balanced, and children do not correlate with the parent's
     own output stream. *)
  let parent = Rng.create 1 in
  let n = 1000 in
  let firsts = Array.init n (fun i -> Rng.next (Rng.split parent i)) in
  let tbl = Hashtbl.create n in
  Array.iter (fun x -> Hashtbl.replace tbl x ()) firsts;
  Alcotest.(check int) "children pairwise distinct" n (Hashtbl.length tbl);
  for bit = 0 to 61 do
    let ones = Array.fold_left (fun acc x -> acc + ((x lsr bit) land 1)) 0 firsts in
    Alcotest.(check bool)
      (Printf.sprintf "bit %d balanced" bit)
      true
      (ones > n * 35 / 100 && ones < n * 65 / 100)
  done;
  let p = Rng.create 1 in
  let parent_outs = Array.init n (fun _ -> Rng.next p) in
  let coincide = ref 0 in
  Array.iteri (fun i x -> if x = parent_outs.(i) then incr coincide) firsts;
  Alcotest.(check int) "children decorrelated from parent stream" 0 !coincide

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 57 (Vec.get v 57);
  Vec.set v 57 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 57);
  Alcotest.(check (option int)) "pop" (Some 99) (Vec.pop v);
  Alcotest.(check int) "after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "oob get" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 3))

let test_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

let test_stat_mean_geomean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stat.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "geomean of equal" 3. (Stat.geomean [ 3.; 3.; 3. ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Stat.mean []);
  Alcotest.(check (float 1e-6)) "geomean 2,8" 4. (Stat.geomean [ 2.; 8. ])

let test_stat_normalize () =
  let n = Stat.normalize [ 1.; 3. ] in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. (Stat.sum n)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "xxx"; "1" ]; [ "y"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  match lines with
  | first :: rest ->
    List.iter
      (fun l -> Alcotest.(check int) "width" (String.length first) (String.length l))
      rest
  | [] -> Alcotest.fail "no output"

let test_digraph_scc () =
  (* 0 -> 1 -> 2 -> 0 forms one SCC; 3 alone; 2 -> 3. *)
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 0;
  Digraph.add_edge g 2 3;
  let comps = Digraph.sccs g in
  Alcotest.(check int) "two components" 2 (Array.length comps);
  let sizes = Array.to_list comps |> List.map List.length |> List.sort compare in
  Alcotest.(check (list int)) "sizes" [ 1; 3 ] sizes

let test_digraph_condense_acyclic () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 0;
  Digraph.add_edge g 2 3;
  let dag, idx = Digraph.condense g in
  Alcotest.(check bool) "condensation acyclic" true (Digraph.is_acyclic dag);
  Alcotest.(check bool) "cycle nodes share component" true
    (idx.(0) = idx.(1) && idx.(1) = idx.(2));
  Alcotest.(check bool) "3 in its own component" true (idx.(3) <> idx.(0))

let test_topo_sort () =
  let g = Digraph.create 5 in
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 3;
  Digraph.add_edge g 3 4;
  match Digraph.topo_sort g with
  | None -> Alcotest.fail "expected a topological order"
  | Some order ->
    let pos = List.mapi (fun i v -> (v, i)) order in
    let before a b = List.assoc a pos < List.assoc b pos in
    Alcotest.(check bool) "0 before 2" true (before 0 2);
    Alcotest.(check bool) "2 before 4" true (before 2 4)

let test_topo_cycle () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 0;
  Alcotest.(check bool) "cycle has no topo order" true (Digraph.topo_sort g = None)

let test_topo_prop =
  QCheck.Test.make ~name:"topo_sort respects forward edges" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let g = Digraph.create 20 in
      List.iter (fun (a, b) -> if a < b then Digraph.add_edge g a b) pairs;
      match Digraph.topo_sort g with
      | None -> false
      | Some order ->
        let pos = Array.make 20 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        List.for_all (fun (a, b) -> a >= b || pos.(a) < pos.(b)) pairs)

let test_scc_idempotent =
  QCheck.Test.make ~name:"scc stable under duplicate edges" ~count:100
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let g1 = Digraph.create 10 and g2 = Digraph.create 10 in
      List.iter (fun (a, b) -> Digraph.add_edge g1 a b) pairs;
      List.iter
        (fun (a, b) ->
          Digraph.add_edge g2 a b;
          Digraph.add_edge g2 a b)
        pairs;
      Digraph.scc_index g1 = Digraph.scc_index g2)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "split pure" `Quick test_rng_split_pure;
          Alcotest.test_case "split statistics" `Quick test_rng_split_statistical;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          QCheck_alcotest.to_alcotest test_vec_roundtrip;
        ] );
      ( "stat",
        [
          Alcotest.test_case "mean/geomean" `Quick test_stat_mean_geomean;
          Alcotest.test_case "normalize" `Quick test_stat_normalize;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
      ( "digraph",
        [
          Alcotest.test_case "scc" `Quick test_digraph_scc;
          Alcotest.test_case "condense" `Quick test_digraph_condense_acyclic;
          Alcotest.test_case "topo" `Quick test_topo_sort;
          Alcotest.test_case "topo cycle" `Quick test_topo_cycle;
          QCheck_alcotest.to_alcotest test_topo_prop;
          QCheck_alcotest.to_alcotest test_scc_idempotent;
        ] );
    ]
