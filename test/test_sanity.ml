(* Runtime invariant sanitizer tests.

   Two obligations, mirroring the fuzzer's self-tests: clean runs must
   stay clean (no false positives across the strategy matrix, and a
   sanitized run must not perturb the architectural numbers), and every
   fault class the sanitizer claims to catch must actually be caught when
   deliberately injected past the recovery machinery — a silently
   tampered message payload, a dropped in-flight message, a bit flip
   smuggled past ECC, and a TM rollback that leaks a buffered store. *)

module Sanity = Voltron_sanity.Sanity
module Run = Voltron.Run
module Machine = Voltron_machine.Machine
module Net = Voltron_net.Operand_network
module Memory = Voltron_mem.Memory
module Tm = Voltron_mem.Tm
module Coherence = Voltron_mem.Coherence
module Fault = Voltron_fault.Fault
module Config = Voltron_machine.Config
module Suite = Voltron_workloads.Suite
module Frontend = Voltron_lang.Frontend

(* --- Helpers -------------------------------------------------------------- *)

let report_exn m =
  match m.Run.sanity with
  | Some r -> r
  | None -> Alcotest.fail "sanitized run carries no sanity report"

let classes r = List.map fst r.Sanity.r_by_class

let has_class cls r = List.mem_assoc cls r.Sanity.r_by_class

let check_class name cls r =
  Alcotest.(check bool)
    (Printf.sprintf "%s: report has class %s (got: %s)" name cls
       (String.concat "," (classes r)))
    true (has_class cls r)

let stopped m =
  match m.Run.outcome with Run.Sanity_stopped _ -> true | _ -> false

(* Arm a one-shot sabotage from the machine's per-cycle hook; returns the
   cycle it fired on. *)
let arm_once m f =
  let fired = ref (-1) in
  Machine.set_on_cycle m (fun ~now ->
      if !fired < 0 && f () then fired := now);
  fired

(* --- Policies ------------------------------------------------------------- *)

let test_policy_round_trip () =
  List.iter
    (fun p ->
      match Sanity.policy_of_string (Sanity.policy_name p) with
      | Ok p' -> Alcotest.(check bool) (Sanity.policy_name p) true (p = p')
      | Error e -> Alcotest.fail e)
    [ Sanity.Report; Sanity.Abort; Sanity.Recover ];
  Alcotest.(check bool) "bogus policy rejected" true
    (match Sanity.policy_of_string "bogus" with Error _ -> true | Ok _ -> false)

(* --- Clean runs stay clean ------------------------------------------------ *)

let test_clean_matrix () =
  let programs =
    [
      ("micro:gsm_llp", Suite.micro_gsm_llp ());
      ("micro:gzip_strands", Suite.micro_gzip_strands ());
      ("micro:gsm_ilp", Suite.micro_gsm_ilp ());
      ("gsmencode", (Suite.by_name "gsmencode").Suite.build ~scale:0.05 ());
    ]
  in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun choice ->
          List.iter
            (fun cores ->
              let m =
                Run.run ~choice ~sanitize:Sanity.Abort ~n_cores:cores p
              in
              let r = report_exn m in
              let label =
                Printf.sprintf "%s/%s/%d" name (Run.choice_name choice) cores
              in
              Alcotest.(check bool) (label ^ " completed") true (Run.completed m);
              Alcotest.(check bool) (label ^ " verified") true m.Run.verified;
              Alcotest.(check bool)
                (Printf.sprintf "%s clean (got: %s)" label
                   (String.concat "," (classes r)))
                true (Sanity.clean r))
            [ 2; 4 ])
        [ `Seq; `Tlp; `Llp; `Hybrid ])
    programs

(* The sanitizer must observe, never perturb: a sanitized run's
   architectural numbers are identical to the plain run's (it disables
   stall fast-forward, which is itself architecturally invisible). *)
let test_sanitized_run_is_invisible () =
  let p = (Suite.by_name "gsmencode").Suite.build ~scale:0.1 () in
  let plain = Run.run ~choice:`Hybrid ~n_cores:4 p in
  let sane = Run.run ~choice:`Hybrid ~sanitize:Sanity.Abort ~n_cores:4 p in
  Alcotest.(check int) "same cycles" plain.Run.cycles sane.Run.cycles;
  Alcotest.(check bool) "same stats" true (plain.Run.stats = sane.Run.stats);
  Alcotest.(check bool) "still verified" true sane.Run.verified;
  Alcotest.(check bool) "clean" true (Sanity.clean (report_exn sane))

(* Same obligation on the directory backend: the oracle states its rule
   over cache states, not protocol messages, so switching the coherence
   backend must change neither the numbers nor the verdict. Cycle and
   stats identity pins that the sanitizer stays architecturally invisible
   there too. *)
let test_sanitized_directory_is_invisible () =
  let p = (Suite.by_name "gsmencode").Suite.build ~scale:0.1 () in
  let tweak = Config.with_coherence Coherence.Directory in
  let plain = Run.run ~choice:`Hybrid ~tweak ~n_cores:4 p in
  let sane = Run.run ~choice:`Hybrid ~tweak ~sanitize:Sanity.Abort ~n_cores:4 p in
  Alcotest.(check int) "same cycles" plain.Run.cycles sane.Run.cycles;
  Alcotest.(check bool) "same stats" true (plain.Run.stats = sane.Run.stats);
  Alcotest.(check bool) "still verified" true sane.Run.verified;
  Alcotest.(check bool) "clean" true (Sanity.clean (report_exn sane))

(* --- Detection: coherence ------------------------------------------------- *)

(* An injected directory-protocol bug — one invalidation round silently
   skips a remote sharer, leaving its S copy to coexist with the writer's
   fresh M copy — must be stopped by the single-writer oracle at the very
   access that creates the pair. (test_mem drives the same backdoor at
   the hierarchy level; this is the live-machine proof.) *)
let test_detects_stale_sharer () =
  let p = (Suite.by_name "gsmencode").Suite.build ~scale:0.1 () in
  let prepare _ m = Coherence.test_inject_stale_sharer (Machine.coherence m) in
  let tweak = Config.with_coherence Coherence.Directory in
  let m =
    Run.run ~choice:`Hybrid ~prepare ~tweak ~sanitize:Sanity.Abort ~n_cores:4 p
  in
  let r = report_exn m in
  Alcotest.(check bool) "machine stopped at the violation" true (stopped m);
  check_class "stale sharer" "coherence-states" r

(* --- Detection: network --------------------------------------------------- *)

(* A silently corrupted in-flight payload (no bad-parity mark, so the
   retry machinery never sees it) must be flagged at delivery. *)
let test_detects_tampered_payload () =
  let p = Suite.micro_gzip_strands () in
  let prepare _ m =
    ignore (arm_once m (fun () -> Net.test_tamper_payload (Machine.network m)))
  in
  let m = Run.run ~choice:`Tlp ~prepare ~sanitize:Sanity.Abort ~n_cores:2 p in
  let r = report_exn m in
  Alcotest.(check bool) "machine stopped at the violation" true (stopped m);
  check_class "tampered payload" "msg-payload" r;
  match
    List.find_opt
      (fun v -> Sanity.kind_class v.Sanity.v_kind = "msg-payload")
      r.Sanity.r_recorded
  with
  | None -> Alcotest.fail "no recorded msg-payload violation"
  | Some v ->
    Alcotest.(check bool) "blame edge attached" true (v.Sanity.v_blame <> None)

(* A message deleted from the in-flight list must break conservation on
   the very cycle it disappears. *)
let test_detects_dropped_message () =
  let p = Suite.micro_gzip_strands () in
  let drop_cycle = ref (-1) in
  let prepare _ m =
    drop_cycle := -1;
    Machine.set_on_cycle m (fun ~now ->
        if !drop_cycle < 0 && Net.test_drop (Machine.network m) then
          drop_cycle := now)
  in
  let m = Run.run ~choice:`Tlp ~prepare ~sanitize:Sanity.Abort ~n_cores:2 p in
  let r = report_exn m in
  Alcotest.(check bool) "machine stopped at the violation" true (stopped m);
  check_class "dropped message" "msg-conservation" r;
  Alcotest.(check bool) "a message was dropped" true (!drop_cycle >= 0);
  match
    List.find_opt
      (fun v -> Sanity.kind_class v.Sanity.v_kind = "msg-conservation")
      r.Sanity.r_recorded
  with
  | None -> Alcotest.fail "no recorded msg-conservation violation"
  | Some v ->
    Alcotest.(check int) "detected on the drop cycle" !drop_cycle
      v.Sanity.v_cycle

(* --- Detection: memory ---------------------------------------------------- *)

(* A word rewritten behind ECC's back (no syndrome, so correction and
   scrub never fire) must be caught by the shadow at the next load of
   that address — array [a] lives at base 0 and is re-read every
   iteration, so the tamper is observed promptly and located exactly. *)
let tamper_src =
  "array a[8];\n\
   array out[8];\n\
   region main {\n\
  \  var acc = 0;\n\
  \  for (i = 0; i < 300; i += 1) {\n\
  \    acc = (acc + a[(i & 7)]);\n\
  \  }\n\
  \  out[0] = acc;\n\
   }\n"

let test_detects_mem_tamper () =
  let p = Frontend.parse_string ~name:"tamper" tamper_src in
  let prepare _ m =
    let mem = Machine.memory m in
    ignore
      (arm_once m (fun () ->
           Memory.test_tamper mem 0 (Memory.peek mem 0 lxor 1);
           true))
  in
  let m = Run.run ~choice:`Seq ~prepare ~sanitize:Sanity.Abort ~n_cores:2 p in
  let r = report_exn m in
  Alcotest.(check bool) "machine stopped at the violation" true (stopped m);
  check_class "mem tamper" "read-divergence" r;
  match
    List.find_opt
      (fun v -> Sanity.kind_class v.Sanity.v_kind = "read-divergence")
      r.Sanity.r_recorded
  with
  | None -> Alcotest.fail "no recorded read-divergence violation"
  | Some v ->
    Alcotest.(check (option int)) "locates the tampered address" (Some 0)
      v.Sanity.v_addr

(* Under Report the same tamper is counted but the run is not stopped. *)
let test_report_policy_does_not_stop () =
  let p = Frontend.parse_string ~name:"tamper" tamper_src in
  let prepare _ m =
    let mem = Machine.memory m in
    ignore
      (arm_once m (fun () ->
           Memory.test_tamper mem 0 (Memory.peek mem 0 lxor 1);
           true))
  in
  let m = Run.run ~choice:`Seq ~prepare ~sanitize:Sanity.Report ~n_cores:2 p in
  let r = report_exn m in
  Alcotest.(check bool) "run completed" true (Run.completed m);
  Alcotest.(check bool) "violations counted" true (r.Sanity.r_total > 0);
  check_class "report-mode tamper" "read-divergence" r

(* --- Detection: transactional memory -------------------------------------- *)

(* A broken rollback — one buffered store leaking to memory on abort —
   is invisible to the recovery machinery (the re-executed chunk usually
   rewrites the same address) but must be caught by the abort audit at
   the abort itself, before re-execution can mask it. *)
let test_detects_tm_leak () =
  (* 164.gzip is the suite's statistical-DOALL workload: under [`Llp] its
     chunks run as transactions, so a spurious abort (rate 1.0) gives the
     armed leak a buffered store to betray. *)
  let p = (Suite.by_name "164.gzip").Suite.build ~scale:0.05 () in
  let fault = { Fault.disabled with Fault.fault_seed = 5; tm_abort_rate = 1.0 } in
  let tweak c = { c with Config.fault } in
  let prepare _ m = Tm.test_leak_next_abort (Machine.tm m) in
  let m =
    Run.run ~choice:`Llp ~tweak ~prepare ~sanitize:Sanity.Abort ~n_cores:2 p
  in
  let r = report_exn m in
  Alcotest.(check bool) "machine stopped at the violation" true (stopped m);
  check_class "tm leak" "tm-leak" r;
  match
    List.find_opt
      (fun v -> Sanity.kind_class v.Sanity.v_kind = "tm-leak")
      r.Sanity.r_recorded
  with
  | None -> Alcotest.fail "no recorded tm-leak violation"
  | Some v ->
    Alcotest.(check bool) "blamed on a core" true (v.Sanity.v_core <> None);
    Alcotest.(check bool) "locates an address" true (v.Sanity.v_addr <> None)

(* --- Recover policy drives the degradation ladder ------------------------- *)

let test_recover_degrades_to_completion () =
  let p = Suite.micro_gzip_strands () in
  (* Every rung re-arms the tamper; the serial floor has no queue traffic
     to tamper (and demotes Recover to Report anyway), so the ladder must
     bottom out in a completed, verified run. *)
  let prepare _ m =
    ignore (arm_once m (fun () -> Net.test_tamper_payload (Machine.network m)))
  in
  let r =
    Run.run_resilient ~choice:`Tlp ~prepare ~sanitize:Sanity.Recover ~n_cores:2 p
  in
  Alcotest.(check bool) "ladder degraded" true r.Run.degraded;
  Alcotest.(check bool) "multiple attempts" true (List.length r.Run.attempts >= 2);
  Alcotest.(check bool) "final run completed" true (Run.completed r.Run.final);
  Alcotest.(check bool) "final run verified" true r.Run.final.Run.verified

(* --- Plumbing: divergence class and JSON ---------------------------------- *)

let test_divergence_class () =
  let case = { Run.d_strategy = `Tlp; d_cores = 2; d_coherence = Coherence.Snoop } in
  let p = Suite.micro_gsm_ilp () in
  let m = Run.run ~choice:`Ilp ~sanitize:Sanity.Abort ~n_cores:2 p in
  let r = report_exn m in
  let d =
    Run.Sanity_violation
      { sv_case = case; sv_fast_forward = true; sv_report = r }
  in
  Alcotest.(check string) "class tag" "sanitizer" (Run.divergence_class d);
  Alcotest.(check bool) "renders" true
    (String.length (Run.divergence_to_string d) > 0)

let test_report_json () =
  let p = Suite.micro_gsm_ilp () in
  let m = Run.run ~sanitize:Sanity.Abort ~n_cores:2 p in
  let r = report_exn m in
  let s = Voltron_obs.Json.to_string (Sanity.report_to_json r) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "JSON mentions %s" needle)
        true
        (let rec find i =
           i + String.length needle <= String.length s
           && (String.sub s i (String.length needle) = needle || find (i + 1))
         in
         find 0))
    [ "policy"; "abort"; "total"; "violations" ]

let () =
  Alcotest.run "sanity"
    [
      ("policy", [ Alcotest.test_case "round trip" `Quick test_policy_round_trip ]);
      ( "clean",
        [
          Alcotest.test_case "strategy matrix stays clean" `Slow test_clean_matrix;
          Alcotest.test_case "sanitizer is architecturally invisible" `Quick
            test_sanitized_run_is_invisible;
          Alcotest.test_case "invisible on the directory backend" `Quick
            test_sanitized_directory_is_invisible;
        ] );
      ( "detection",
        [
          Alcotest.test_case "stale sharer stopped" `Quick
            test_detects_stale_sharer;
          Alcotest.test_case "tampered payload" `Quick test_detects_tampered_payload;
          Alcotest.test_case "dropped message" `Quick test_detects_dropped_message;
          Alcotest.test_case "memory tamper past ECC" `Quick test_detects_mem_tamper;
          Alcotest.test_case "report policy keeps running" `Quick
            test_report_policy_does_not_stop;
          Alcotest.test_case "tm rollback leak" `Quick test_detects_tm_leak;
        ] );
      ( "recover",
        [
          Alcotest.test_case "ladder runs to completion" `Quick
            test_recover_degrades_to_completion;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "divergence class" `Quick test_divergence_class;
          Alcotest.test_case "report JSON" `Quick test_report_json;
        ] );
    ]
